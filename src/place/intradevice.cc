#include "place/intradevice.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "place/blockdag.h"
#include "util/bits.h"
#include "util/crc.h"
#include "util/strings.h"
#include "util/error.h"

namespace clickinc::place {

DeviceOccupancy DeviceOccupancy::fresh(const device::DeviceModel& model) {
  DeviceOccupancy occ;
  occ.model = &model;
  if (model.arch == device::Arch::kPipeline) {
    for (int s = 0; s < model.num_stages; ++s) {
      occ.free_stage.push_back(device::stageBudget(model, s));
    }
  } else {
    occ.free_whole = device::deviceBudget(model);
  }
  return occ;
}

double DeviceOccupancy::remainingRatio() const {
  double free = 0;
  double cap = 0;
  auto score = [](const device::ResourceDemand& d) {
    // Saturating-int budgets (RTC "unlimited" compute) are clamped so the
    // ratio reflects the binding resources.
    device::ResourceDemand c = d;
    auto clamp = [](int v) { return std::min(v, 1 << 20); };
    c.salus = clamp(c.salus);
    c.alus = clamp(c.alus);
    c.hash_units = clamp(c.hash_units);
    c.tables = clamp(c.tables);
    c.gateways = clamp(c.gateways);
    c.special_fns = clamp(c.special_fns);
    c.micro_instrs = clamp(c.micro_instrs);
    c.dsps = clamp(c.dsps);
    return demandScore(c);
  };
  if (model->arch == device::Arch::kPipeline) {
    for (int s = 0; s < model->num_stages; ++s) {
      free += score(free_stage[static_cast<std::size_t>(s)]);
      cap += score(device::stageBudget(*model, s));
    }
  } else {
    free = score(free_whole);
    cap = score(device::deviceBudget(*model));
  }
  return cap <= 0 ? 0.0 : std::min(1.0, free / cap);
}

namespace {

bool subtractFrom(device::ResourceDemand& budget,
                  const device::ResourceDemand& d) {
  if (!d.fitsWithin(budget)) return false;
  budget.salus -= d.salus;
  budget.alus -= d.alus;
  budget.hash_units -= d.hash_units;
  budget.tables -= d.tables;
  budget.gateways -= d.gateways;
  budget.special_fns -= d.special_fns;
  budget.sram_bits -= d.sram_bits;
  budget.tcam_bits -= d.tcam_bits;
  budget.micro_instrs -= d.micro_instrs;
  budget.dsps -= d.dsps;
  budget.luts -= d.luts;
  budget.ffs -= d.ffs;
  return true;
}

bool isStatefulClass(ir::InstrClass c) {
  return c == ir::InstrClass::kBSO || c == ir::InstrClass::kBSEM ||
         c == ir::InstrClass::kBSNEM;
}

bool isTableLookup(const ir::Instruction& ins) {
  switch (ins.cls()) {
    case ir::InstrClass::kBEM:
    case ir::InstrClass::kBSEM:
    case ir::InstrClass::kBNEM:
    case ir::InstrClass::kBSNEM:
    case ir::InstrClass::kBDM:
      return true;
    default:
      return false;
  }
}

// Demand of one instruction at a (stage, state) site: the first stateful
// touch of a state carries the SALU/table slot plus the state's
// block-rounded storage; subsequent touches of the same state in the same
// stage share the unit.
device::ResourceDemand siteDemand(const ir::IrProgram& prog,
                                  const ir::Instruction& ins,
                                  const device::DeviceModel& model,
                                  std::set<std::pair<int, int>>* seen,
                                  int stage) {
  device::ResourceDemand d = device::instrDemand(ins);
  if (ins.state_id >= 0) {
    const auto key = std::make_pair(stage, ins.state_id);
    if (seen->insert(key).second) {
      device::ResourceDemand st = device::stateDemand(
          prog.states[static_cast<std::size_t>(ins.state_id)]);
      st.sram_bits = ceilDiv(st.sram_bits, model.sram_block_bits) *
                     model.sram_block_bits;
      if (st.tcam_bits > 0) {
        st.tcam_bits = ceilDiv(st.tcam_bits, model.tcam_block_bits) *
                       model.tcam_block_bits;
      }
      d.add(st);
    } else if (isStatefulClass(ins.cls())) {
      d.salus = 0;
      d.tables = 0;
      d.hash_units = 0;
    }
  }
  return d;
}

IntraPlacement placeWholeDevice(const DeviceOccupancy& occ,
                                const ir::IrProgram& prog,
                                const std::vector<int>& instrs) {
  IntraPlacement out;
  out.instr_idxs = instrs;
  out.steps = 1;
  for (int i : instrs) {
    if (!occ.model->supportsOpcode(
            prog.instrs[static_cast<std::size_t>(i)].op)) {
      out.why = cat("unsupported opcode ",
                    ir::opcodeName(prog.instrs[static_cast<std::size_t>(i)].op));
      return out;
    }
  }
  out.total = device::demandOfInstrs(prog, instrs);
  device::ResourceDemand budget = occ.free_whole;
  if (!out.total.fitsWithin(budget)) {
    out.why = "whole-device budget exceeded";
    return out;
  }
  out.feasible = true;
  out.stages_used = instrs.empty() ? 0 : 1;
  return out;
}

}  // namespace

namespace {

std::uint64_t foldValue(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ v);
}

std::uint64_t foldDemand(std::uint64_t h, const device::ResourceDemand& d) {
  h = foldValue(h, static_cast<std::uint64_t>(d.salus));
  h = foldValue(h, static_cast<std::uint64_t>(d.alus));
  h = foldValue(h, static_cast<std::uint64_t>(d.hash_units));
  h = foldValue(h, static_cast<std::uint64_t>(d.tables));
  h = foldValue(h, static_cast<std::uint64_t>(d.gateways));
  h = foldValue(h, static_cast<std::uint64_t>(d.special_fns));
  h = foldValue(h, d.sram_bits);
  h = foldValue(h, d.tcam_bits);
  h = foldValue(h, static_cast<std::uint64_t>(d.micro_instrs));
  h = foldValue(h, static_cast<std::uint64_t>(d.dsps));
  h = foldValue(h, d.luts);
  h = foldValue(h, d.ffs);
  return h;
}

}  // namespace

std::uint64_t occupancyFingerprint(const DeviceOccupancy& occ) {
  std::uint64_t h = 0x5CA1AB1EULL;
  const auto* bytes =
      reinterpret_cast<const std::uint8_t*>(occ.model->name.data());
  h = foldValue(h, crc32(std::span<const std::uint8_t>(
                       bytes, occ.model->name.size())));
  h = foldValue(h, static_cast<std::uint64_t>(occ.model->arch));
  h = foldValue(h, static_cast<std::uint64_t>(occ.model->num_stages));
  // Placement results also depend on the model's capability mask and
  // memory-block rounding, so distinct models sharing a name must not
  // collide.
  h = foldValue(h, static_cast<std::uint64_t>(occ.model->supported));
  h = foldValue(h, occ.model->sram_block_bits);
  h = foldValue(h, occ.model->tcam_block_bits);
  if (occ.model->arch == device::Arch::kPipeline) {
    for (const auto& d : occ.free_stage) h = foldDemand(h, d);
  } else {
    h = foldDemand(h, occ.free_whole);
  }
  return h;
}

std::uint64_t segmentFingerprint(const ir::IrProgram& prog,
                                 const ir::Analysis& an,
                                 const std::vector<int>& instrs) {
  std::uint64_t h = foldValue(0xC0FFEEULL, instrs.size());
  // Local index of each member, so dependency edges hash positionally and
  // the fingerprint is insensitive to the segment's absolute offset.
  std::unordered_map<int, int> local;
  local.reserve(instrs.size() * 2);
  for (std::size_t k = 0; k < instrs.size(); ++k) {
    local.emplace(instrs[k], static_cast<int>(k));
  }
  std::unordered_map<int, int> state_local;
  std::vector<int> state_order;  // first-touch order of referenced states
  for (std::size_t k = 0; k < instrs.size(); ++k) {
    const auto& ins = prog.instrs[static_cast<std::size_t>(instrs[k])];
    h = foldValue(h, static_cast<std::uint64_t>(ins.op));
    int state_slot = -1;
    if (ins.state_id >= 0) {
      auto [it, inserted] =
          state_local.emplace(ins.state_id,
                              static_cast<int>(state_local.size()));
      if (inserted) state_order.push_back(ins.state_id);
      state_slot = it->second;
    }
    h = foldValue(h, static_cast<std::uint64_t>(state_slot + 1));
    h = foldDemand(h, device::instrDemand(ins));
    for (int j : an.dep.deps[static_cast<std::size_t>(instrs[k])]) {
      auto it = local.find(j);
      if (it == local.end()) continue;  // producer outside the segment
      h = foldValue(h, (static_cast<std::uint64_t>(k) << 20) ^
                           static_cast<std::uint64_t>(it->second));
      h = foldValue(h, an.sameScc(instrs[k], j) ? 0x2 : 0x1);
    }
  }
  for (int sid : state_order) {
    h = foldDemand(h,
                   device::stateDemand(
                       prog.states[static_cast<std::size_t>(sid)]));
  }
  return h;
}

IntraMemo::Claim IntraMemo::claim(const MemoKey& key, IntraPlacement* out) {
  Shard& shard = shardOf(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key);
  Entry& entry = it->second;
  Claim c;
  c.entry = &entry;
  c.shard = static_cast<int>(&shard - shards_.data());
  if (inserted) {
    ++shard.misses;
    c.leader = true;
    return c;
  }
  if (!entry.ready) {
    // In-flight: another thread claimed this key and is computing it.
    // Wait it out — the follower would otherwise redo the exact same
    // search, so blocking costs no more than computing and keeps
    // intra_calls/steps deterministic. Node-based map entries are
    // address-stable across concurrent inserts, and the waiter count
    // shields the slot from eviction until every claimant (blocked or
    // woken-but-unscheduled) has copied its result out.
    ++entry.waiters;
    shard.ready_cv.wait(lock, [&] { return entry.ready; });
    --entry.waiters;
  }
  if (entry.failed) {
    // The previous leader threw instead of publishing a result. Take
    // over leadership; any other waiters re-block on !ready.
    entry.ready = false;
    entry.failed = false;
    ++shard.misses;
    c.leader = true;
    return c;
  }
  ++shard.hits;
  *out = entry.placement;
  return c;
}

void IntraMemo::publish(const Claim& claim, const IntraPlacement& placement) {
  Shard& shard = shards_[static_cast<std::size_t>(claim.shard)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMaxEntriesPerShard) evictReady(shard);
  Entry& entry = *static_cast<Entry*>(claim.entry);
  entry.placement = placement;
  entry.ready = true;
  shard.ready_cv.notify_all();
}

void IntraMemo::publishError(const Claim& claim) {
  Shard& shard = shards_[static_cast<std::size_t>(claim.shard)];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = *static_cast<Entry*>(claim.entry);
  entry.failed = true;
  entry.ready = true;  // wakes waiters; the first re-leads and resets
  shard.ready_cv.notify_all();
}

void IntraMemo::evictReady(Shard& shard) {
  // Wholesale eviction of published entries. In-flight slots (not ready)
  // and slots with registered waiters survive: a follower may hold a
  // pointer from before it blocked — or may have been notified but not
  // yet rescheduled, which is why ready alone is not a safe criterion.
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    if (it->second.ready && it->second.waiters == 0) {
      it = shard.map.erase(it);
    } else {
      ++it;
    }
  }
}

const IntraPlacement* IntraMemo::find(const MemoKey& key) {
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || !it->second.ready || it->second.failed) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  return &it->second.placement;
}

const IntraPlacement& IntraMemo::put(const MemoKey& key,
                                     IntraPlacement placement) {
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMaxEntriesPerShard) evictReady(shard);
  Entry& entry = shard.map[key];
  entry.placement = std::move(placement);
  entry.ready = true;
  entry.failed = false;
  return entry.placement;
}

long IntraMemo::hits() const {
  long total = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.hits;
  }
  return total;
}

long IntraMemo::misses() const {
  long total = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.misses;
  }
  return total;
}

std::size_t IntraMemo::size() const {
  std::size_t total = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.map.size();
  }
  return total;
}

void IntraMemo::clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.hits = 0;
    s.misses = 0;
  }
}

IntraPlacement placeCompact(const DeviceOccupancy& occ,
                            const ir::IrProgram& prog,
                            const std::vector<int>& instrs,
                            int min_stage, const ir::Analysis* an) {
  IntraPlacement out;
  out.instr_idxs = instrs;
  if (instrs.empty()) {
    out.feasible = true;
    return out;
  }
  if (occ.model->arch != device::Arch::kPipeline) {
    return placeWholeDevice(occ, prog, instrs);
  }

  for (int i : instrs) {
    if (!occ.model->supportsOpcode(
            prog.instrs[static_cast<std::size_t>(i)].op)) {
      out.why = cat("unsupported opcode ",
                    ir::opcodeName(prog.instrs[static_cast<std::size_t>(i)].op));
      return out;
    }
  }

  const ir::Analysis local = an == nullptr ? ir::analyzeProgram(prog)
                                           : ir::Analysis{};
  const ir::Analysis& analysis = an == nullptr ? local : *an;
  const ir::DepGraph& dep = analysis.dep;
  const int num_stages = occ.model->num_stages;
  std::vector<device::ResourceDemand> free = occ.free_stage;
  std::map<int, int> stage_by_instr;
  std::set<std::pair<int, int>> state_sites;
  out.stage_of.assign(instrs.size(), -1);

  // All touches of one state object go to one stage (the array is bound to
  // a single SALU), so a state's touch-group is placed atomically at the
  // first encounter — otherwise later touches can find their pinned stage
  // full.
  std::map<int, std::vector<std::size_t>> group_of_state;
  for (std::size_t k = 0; k < instrs.size(); ++k) {
    const auto& ins = prog.instrs[static_cast<std::size_t>(instrs[k])];
    if (ins.state_id >= 0) group_of_state[ins.state_id].push_back(k);
  }

  // Earliest legal stage for one instruction given already-placed
  // producers; intra-SCC (fused stateful group) ordering is exempt.
  auto earliestFor = [&](int i) {
    int earliest = min_stage;
    const auto& ins = prog.instrs[static_cast<std::size_t>(i)];
    for (int j : dep.deps[static_cast<std::size_t>(i)]) {
      auto it = stage_by_instr.find(j);
      if (it == stage_by_instr.end()) continue;  // producer upstream/later
      if (analysis.sameScc(i, j)) continue;
      const auto& producer = prog.instrs[static_cast<std::size_t>(j)];
      const bool fused = isTableLookup(producer) && !isTableLookup(ins);
      earliest = std::max(earliest, it->second + (fused ? 0 : 1));
    }
    return earliest;
  };

  std::vector<bool> done(instrs.size(), false);
  for (std::size_t k = 0; k < instrs.size(); ++k) {
    if (done[k]) continue;
    const int i = instrs[k];
    const auto& ins = prog.instrs[static_cast<std::size_t>(i)];
    ++out.steps;

    // Members placed together: the state's whole touch group, or just {k}.
    std::vector<std::size_t> members = {k};
    if (ins.state_id >= 0) members = group_of_state.at(ins.state_id);

    int earliest = min_stage;
    for (std::size_t mk : members) {
      earliest = std::max(earliest, earliestFor(instrs[mk]));
    }

    int placed_stage = -1;
    for (int s = earliest; s < num_stages; ++s) {
      ++out.steps;
      // Probe the combined demand of all members at stage s.
      std::set<std::pair<int, int>> probe = state_sites;
      device::ResourceDemand combined;
      for (std::size_t mk : members) {
        combined.add(siteDemand(
            prog, prog.instrs[static_cast<std::size_t>(instrs[mk])],
            *occ.model, &probe, s));
      }
      if (combined.fitsWithin(free[static_cast<std::size_t>(s)])) {
        CLICKINC_CHECK(
            subtractFrom(free[static_cast<std::size_t>(s)], combined),
            "fit check lied");
        state_sites = std::move(probe);
        placed_stage = s;
        break;
      }
    }
    if (placed_stage < 0) {
      out.why = cat("no stage fits instr #", i, " (", ins.toString(),
                    ") earliest=", earliest);
      return out;
    }
    for (std::size_t mk : members) {
      stage_by_instr[instrs[mk]] = placed_stage;
      out.stage_of[mk] = placed_stage;
      done[mk] = true;
    }
  }

  out.feasible = true;
  int lo = num_stages, hi = -1;
  for (int s : out.stage_of) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  out.stages_used = hi - lo + 1;
  out.total = device::demandOfInstrs(prog, instrs);
  return out;
}

namespace {

struct ExhaustiveSearch {
  const DeviceOccupancy* occ;
  const ir::IrProgram* prog;
  const std::vector<int>* instrs;
  const ir::Analysis* analysis;
  long max_steps;
  int min_stage;

  long steps = 0;
  int best_span = std::numeric_limits<int>::max();
  std::vector<int> best_stages;

  std::vector<int> cur;
  std::vector<device::ResourceDemand> free;
  std::map<int, int> stage_by_instr;
  std::map<int, int> stage_by_state;
  std::set<std::pair<int, int>> state_sites;

  void run(std::size_t k) {
    if (steps >= max_steps) return;
    if (k == instrs->size()) {
      int lo = occ->model->num_stages, hi = -1;
      for (int s : cur) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      const int span = cur.empty() ? 0 : hi - lo + 1;
      if (span < best_span) {
        best_span = span;
        best_stages = cur;
      }
      return;
    }
    const int i = (*instrs)[k];
    const auto& ins = prog->instrs[static_cast<std::size_t>(i)];
    int earliest = min_stage;
    for (int j : analysis->dep.deps[static_cast<std::size_t>(i)]) {
      auto it = stage_by_instr.find(j);
      if (it == stage_by_instr.end()) continue;
      if (analysis->sameScc(i, j)) continue;
      const auto& producer = prog->instrs[static_cast<std::size_t>(j)];
      const bool fused = isTableLookup(producer) &&
                         !isTableLookup(ins);
      earliest = std::max(earliest, it->second + (fused ? 0 : 1));
    }
    int pinned = -1;
    if (ins.state_id >= 0) {
      auto it = stage_by_state.find(ins.state_id);
      if (it != stage_by_state.end()) pinned = it->second;
    }
    if (pinned >= 0) earliest = std::min(earliest, pinned);
    for (int s = earliest; s < occ->model->num_stages; ++s) {
      if (pinned >= 0 && s != pinned) continue;
      ++steps;
      if (steps >= max_steps) return;
      std::set<std::pair<int, int>> saved_sites = state_sites;
      const auto d = siteDemand(*prog, ins, *occ->model, &state_sites, s);
      if (!d.fitsWithin(free[static_cast<std::size_t>(s)])) {
        state_sites = std::move(saved_sites);
        continue;
      }
      subtractFrom(free[static_cast<std::size_t>(s)], d);
      cur.push_back(s);
      stage_by_instr[i] = s;
      const bool had_state_pin = pinned >= 0;
      if (ins.state_id >= 0 && !had_state_pin) {
        stage_by_state[ins.state_id] = s;
      }
      run(k + 1);
      if (ins.state_id >= 0 && !had_state_pin) {
        stage_by_state.erase(ins.state_id);
      }
      stage_by_instr.erase(i);
      cur.pop_back();
      auto& f = free[static_cast<std::size_t>(s)];
      f.add(d);  // return the charge
      state_sites = std::move(saved_sites);
    }
  }
};

}  // namespace

IntraPlacement placeExhaustive(const DeviceOccupancy& occ,
                               const ir::IrProgram& prog,
                               const std::vector<int>& instrs,
                               long max_steps, int min_stage,
                               const ir::Analysis* an) {
  IntraPlacement out;
  out.instr_idxs = instrs;
  if (instrs.empty()) {
    out.feasible = true;
    return out;
  }
  if (occ.model->arch != device::Arch::kPipeline) {
    return placeWholeDevice(occ, prog, instrs);
  }
  for (int i : instrs) {
    if (!occ.model->supportsOpcode(
            prog.instrs[static_cast<std::size_t>(i)].op)) {
      return out;
    }
  }
  const ir::Analysis local = an == nullptr ? ir::analyzeProgram(prog)
                                           : ir::Analysis{};
  const ir::Analysis& analysis = an == nullptr ? local : *an;
  ExhaustiveSearch search;
  search.occ = &occ;
  search.prog = &prog;
  search.instrs = &instrs;
  search.analysis = &analysis;
  search.max_steps = max_steps;
  search.min_stage = min_stage;
  search.free = occ.free_stage;
  search.run(0);

  out.steps = search.steps;
  if (search.best_stages.empty() && !instrs.empty()) return out;
  out.feasible = true;
  out.stage_of = search.best_stages;
  out.stages_used = search.best_span;
  out.total = device::demandOfInstrs(prog, instrs);
  return out;
}

DeviceOccupancy placementClaims(const ir::IrProgram& prog,
                                const IntraPlacement& placement,
                                const device::DeviceModel& model) {
  DeviceOccupancy claims;
  claims.model = &model;
  if (model.arch != device::Arch::kPipeline) {
    // commitPlacement subtracts placement.total; placeWholeDevice sets it
    // to demandOfInstrs, so recomputing from the instructions yields the
    // same vector for any honestly produced placement (and exposes plans
    // whose cached total drifted from their instruction list).
    claims.free_whole = device::demandOfInstrs(prog, placement.instr_idxs);
    return claims;
  }
  claims.free_stage.assign(static_cast<std::size_t>(model.num_stages), {});
  std::set<std::pair<int, int>> sites;
  for (std::size_t k = 0; k < placement.instr_idxs.size(); ++k) {
    const auto& ins = prog.instrs[static_cast<std::size_t>(
        placement.instr_idxs[k])];
    const int s = placement.stage_of[k];
    claims.free_stage[static_cast<std::size_t>(s)].add(
        siteDemand(prog, ins, model, &sites, s));
  }
  return claims;
}

void commitPlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                     const IntraPlacement& placement) {
  CLICKINC_CHECK(placement.feasible, "committing infeasible placement");
  if (occ.model->arch != device::Arch::kPipeline) {
    CLICKINC_CHECK(subtractFrom(occ.free_whole, placement.total),
                   "over-committed device");
    return;
  }
  // Bounds are checked, not assumed: commit also replays journal records
  // whose bytes only ever passed a CRC (core/service.cc recovery).
  CLICKINC_CHECK(placement.stage_of.size() == placement.instr_idxs.size(),
                 "commit: stage/instr arity mismatch");
  std::set<std::pair<int, int>> sites;
  for (std::size_t k = 0; k < placement.instr_idxs.size(); ++k) {
    const int idx = placement.instr_idxs[k];
    CLICKINC_CHECK(idx >= 0 &&
                       idx < static_cast<int>(prog.instrs.size()),
                   "commit: instr index outside program");
    const auto& ins = prog.instrs[static_cast<std::size_t>(idx)];
    const int s = placement.stage_of[k];
    CLICKINC_CHECK(s >= 0 &&
                       s < static_cast<int>(occ.free_stage.size()),
                   "commit: stage outside device pipeline");
    const auto d = siteDemand(prog, ins, *occ.model, &sites, s);
    CLICKINC_CHECK(
        subtractFrom(occ.free_stage[static_cast<std::size_t>(s)], d),
        "over-committed stage");
  }
}



void releasePlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                      const IntraPlacement& placement) {
  if (occ.model->arch != device::Arch::kPipeline) {
    occ.free_whole.add(placement.total);
    return;
  }
  std::set<std::pair<int, int>> sites;
  for (std::size_t k = 0; k < placement.instr_idxs.size(); ++k) {
    const auto& ins = prog.instrs[static_cast<std::size_t>(
        placement.instr_idxs[k])];
    const int s = placement.stage_of[k];
    const auto d = siteDemand(prog, ins, *occ.model, &sites, s);
    occ.free_stage[static_cast<std::size_t>(s)].add(d);
  }
}

}  // namespace clickinc::place
