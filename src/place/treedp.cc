#include "place/treedp.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/crc.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace clickinc::place {

Weights adaptiveWeights(double remaining_ratio) {
  Weights w;
  w.wt = 0.5;
  w.wr = 1.0 - std::pow(2.0, remaining_ratio - 1.0);
  w.wp = 0.5 - w.wr;
  return w;
}

OccupancyMap::OccupancyMap(const topo::Topology* topo) : topo_(topo) {
  slot_of_.assign(static_cast<std::size_t>(topo->nodeCount()), -1);
  for (const auto& n : topo->nodes()) {
    if (n.programmable) {
      slot_of_[static_cast<std::size_t>(n.id)] =
          static_cast<int>(slots_.size());
      slots_.push_back(DeviceOccupancy::fresh(n.model));
    }
  }
}

DeviceOccupancy& OccupancyMap::of(int node_id) {
  CLICKINC_CHECK(node_id >= 0 &&
                     node_id < static_cast<int>(slot_of_.size()) &&
                     slot_of_[static_cast<std::size_t>(node_id)] >= 0,
                 "node is not programmable");
  return slots_[static_cast<std::size_t>(
      slot_of_[static_cast<std::size_t>(node_id)])];
}

const DeviceOccupancy& OccupancyMap::of(int node_id) const {
  CLICKINC_CHECK(node_id >= 0 &&
                     node_id < static_cast<int>(slot_of_.size()) &&
                     slot_of_[static_cast<std::size_t>(node_id)] >= 0,
                 "node is not programmable");
  return slots_[static_cast<std::size_t>(
      slot_of_[static_cast<std::size_t>(node_id)])];
}

OccupancyMap::OccupancyMap(const topo::Topology* topo,
                           const OccupancyMap& src,
                           const std::vector<int>& devices)
    : topo_(topo) {
  slot_of_.assign(static_cast<std::size_t>(topo->nodeCount()), -1);
  slots_.reserve(devices.size());
  for (int dev : devices) {
    CLICKINC_CHECK(slot_of_[static_cast<std::size_t>(dev)] < 0,
                   "restricted occupancy copy: duplicate device");
    slot_of_[static_cast<std::size_t>(dev)] = static_cast<int>(slots_.size());
    slots_.push_back(src.of(dev));
  }
}

double OccupancyMap::remainingRatio() const {
  if (slots_.empty()) return 1.0;
  double sum = 0;
  for (const auto& occ : slots_) sum += occ.remainingRatio();
  return sum / static_cast<double>(slots_.size());
}

double OccupancyMap::remainingRatioOver(
    const std::vector<int>& devices) const {
  if (devices.empty()) return 1.0;
  double sum = 0;
  for (int dev : devices) sum += of(dev).remainingRatio();
  return sum / static_cast<double>(devices.size());
}

std::vector<int> PlacementPlan::devicesUsed() const {
  std::vector<int> out;
  for (const auto& a : assignments) {
    if (a.to_block <= a.from_block) continue;
    for (const auto& [dev, p] : a.on_device) {
      (void)p;
      out.push_back(dev);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      (void)p;
      out.push_back(dev);
    }
  }
  return out;
}

int PlacementPlan::blocksOn(int tree_node) const {
  for (const auto& a : assignments) {
    if (a.tree_node == tree_node) return a.to_block - a.from_block;
  }
  return 0;
}

// Grants the placer references to the arena's private scratch buffers
// without exposing them in the public header.
class TreePlacerAccess {
 public:
  struct Buffers {
    std::vector<double>& client_dp;
    std::vector<int>& client_choice;
    std::vector<double>& server_dp;
    std::vector<int>& server_choice;
    std::vector<detail::Segment>& seg_cache;
    std::vector<std::uint64_t>& seg_fp;
    std::vector<std::uint8_t>& seg_fp_set;
    std::vector<double>& traffic_frac;
    std::vector<double>& hop_order;
  };
  static Buffers buffers(PlacementArena& a) {
    return {a.client_dp, a.client_choice, a.server_dp,  a.server_choice,
            a.seg_cache, a.seg_fp,        a.seg_fp_set, a.traffic_frac,
            a.hop_order};
  }
};

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using detail::Segment;

class TreePlacer {
 public:
  TreePlacer(const BlockDag& dag, const topo::EcTree& tree,
             const topo::Topology& topo, const OccupancyMap& occ,
             const PlacementOptions& opts, PlacementArena* arena)
      : t0_(std::chrono::steady_clock::now()),
        dag_(dag),
        tree_(tree),
        topo_(topo),
        occ_(occ),
        opts_(opts),
        arena_(arena != nullptr ? arena : &local_arena_),
        buf_(TreePlacerAccess::buffers(*arena_)) {
    // The pool drives only the fast path: the reference path (fast ==
    // false) is the executable specification and stays strictly
    // sequential. A 1-thread pool degenerates to sequential execution.
    pool_ = opts.fast && opts.pool != nullptr && opts.pool->threadCount() > 1
                ? opts.pool
                : nullptr;
    m_ = dag.size();
    nn_ = static_cast<int>(tree.nodes.size());
    stride_ = m_ + 1;
    seg_stride_ = static_cast<long>(stride_) * stride_;
    analysis_ = ir::analyzeProgram(dag.prog());
    weights_ = opts.adaptive
                   ? adaptiveWeights(opts.ratio_devices != nullptr
                                         ? occ.remainingRatioOver(
                                               *opts.ratio_devices)
                                         : occ.remainingRatio())
                   : opts.weights;
    // Normalizers for h_r / h_p.
    score_norm_ = std::max(1.0, dag.totalScore());
    double cut_total = 0;
    for (int i = 1; i < m_; ++i) cut_total += dag.cutBits(i);
    cut_norm_ = std::max(1.0, cut_total);
    // Flat tables, one allocation each; assign() reuses arena capacity.
    buf_.seg_cache.assign(
        static_cast<std::size_t>(nn_) * static_cast<std::size_t>(seg_stride_),
        Segment{});
    buf_.seg_fp.assign(static_cast<std::size_t>(seg_stride_), 0);
    buf_.seg_fp_set.assign(static_cast<std::size_t>(seg_stride_), 0);
    buf_.client_dp.assign(
        static_cast<std::size_t>(nn_) * static_cast<std::size_t>(stride_),
        kInf);
    buf_.client_choice.assign(
        static_cast<std::size_t>(nn_) * static_cast<std::size_t>(stride_),
        -1);
    buf_.traffic_frac.assign(static_cast<std::size_t>(nn_), 0.0);
    computeTrafficFrac();
    computeHopOrder();
    if (opts_.fast) computeOccFingerprints();
    if (pool_ != nullptr) precomputeSegFingerprints();
  }

  PlacementPlan run() {
    PlacementPlan plan;
    plan.weights_used = weights_;

    if (m_ == 0) {
      plan.feasible = true;
      plan.ht = 1;
      return plan;
    }

    WorkCtx ctx;

    // Client side (includes the root).
    solveClient(tree_.root, ctx);

    // Server chain, backwards: T[t][j] = cost of placing [j, m) on chain
    // nodes t..end.
    const int chain_len = static_cast<int>(tree_.server_chain.size());
    buf_.server_dp.assign(
        static_cast<std::size_t>(chain_len + 1) *
            static_cast<std::size_t>(stride_),
        kInf);
    buf_.server_choice.assign(static_cast<std::size_t>(std::max(chain_len, 1)) *
                                  static_cast<std::size_t>(stride_),
                              -1);
    serverDp(chain_len, m_) = 0;
    for (int t = chain_len - 1; t >= 0; --t) {
      const int node = tree_.server_chain[static_cast<std::size_t>(t)];
      if (pool_ != nullptr) {
        // Rows j are independent: row j probes only segments [j, j2) and
        // writes only T[t][j], so each runs as one task, keeping its own
        // scan order (and early-exit behavior) identical to the
        // sequential loop. Contexts merge in row order.
        const std::size_t rows = static_cast<std::size_t>(m_) + 1;
        std::vector<WorkCtx> sub(rows);
        ctx.stats.parallel_tasks += static_cast<long>(rows);
        pool_->parallelFor(rows, [&](std::size_t j) {
          serverRow(t, node, static_cast<int>(j), sub[j]);
        });
        for (auto& s : sub) ctx.merge(s);
      } else {
        for (int j = 0; j <= m_; ++j) serverRow(t, node, j, ctx);
      }
    }

    // Join at the root.
    double best = kInf;
    int best_b = -1;
    for (int b = 0; b <= m_; ++b) {
      const double left = clientDp(tree_.root, b);
      if (left == kInf) continue;
      const double right = chain_len == 0 ? (b == m_ ? 0.0 : kInf)
                                          : serverDp(0, b);
      if (right == kInf) continue;
      if (left + right < best) {
        best = left + right;
        best_b = b;
      }
    }
    ctx.stats.threads_used = pool_ != nullptr ? pool_->threadCount() : 1;
    plan.steps = ctx.steps;
    plan.stats = ctx.stats;
    // Clocked from the constructor so table/fingerprint setup counts.
    plan.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0_)
            .count();
    if (best_b < 0) {
      plan.failure = "no feasible placement covers all paths";
      // Classify the failure for the service's error taxonomy: a probed
      // segment that failed placement without being monotone-infeasible
      // failed for resource (capacity) reasons. The set of probed
      // segments is identical between the sequential and worker-pool
      // paths (seg_probes/seg_misses parity), so this flag is
      // deterministic across thread counts.
      for (const auto& seg : buf_.seg_cache) {
        if (seg.state == Segment::State::kDone && !seg.feasible &&
            !seg.monotone_infeasible) {
          plan.resource_limited = true;
          break;
        }
      }
      return plan;
    }

    // Backtrack client side then server chain.
    backtrackClient(tree_.root, best_b, &plan, ctx);
    int j = best_b;
    for (int t = 0; t < chain_len; ++t) {
      const int node = tree_.server_chain[static_cast<std::size_t>(t)];
      const int j2 = serverChoice(t, j);
      emitAssignment(node, j, j2, &plan, ctx);
      j = j2;
    }

    plan.feasible = true;
    plan.ht = 1.0;
    double res = 0;
    double cut = 0;
    for (const auto& a : plan.assignments) {
      const Segment& seg = *cachedSegment(a.tree_node, a.from_block,
                                          a.to_block, ctx);
      res += seg.resource_score;
      cut += static_cast<double>(seg.internal_cut_bits) * 0.25;
      if (a.from_block > 0 && a.to_block > a.from_block) {
        cut += dag_.cutBits(a.from_block) *
               buf_.traffic_frac[static_cast<std::size_t>(a.tree_node)];
      }
    }
    plan.hr = res / score_norm_;
    plan.hp = cut / cut_norm_;
    plan.gain = weights_.wt * plan.ht - weights_.wr * plan.hr -
                weights_.wp * plan.hp;
    // plan.stats was snapshotted before backtracking: the re-probes made
    // while emitting assignments are guaranteed hits and would inflate
    // the published cache rates.
    return plan;
  }

 private:
  // Per-task accumulation of search counters. Parallel sections give each
  // task its own context and merge them in task order, so every counter's
  // total is identical to the sequential run's (integer sums commute; the
  // work set itself is identical thanks to the memo's exactly-once
  // claims).
  struct WorkCtx {
    PlacementStats stats;
    long steps = 0;

    void merge(const WorkCtx& o) {
      stats.add(o.stats);
      steps += o.steps;
    }
  };

  std::chrono::steady_clock::time_point t0_;
  const BlockDag& dag_;
  const topo::EcTree& tree_;
  const topo::Topology& topo_;
  const OccupancyMap& occ_;
  PlacementOptions opts_;
  PlacementArena local_arena_;
  PlacementArena* arena_;
  TreePlacerAccess::Buffers buf_;
  util::ThreadPool* pool_ = nullptr;
  Weights weights_;
  int m_ = 0;
  int nn_ = 0;
  int stride_ = 1;
  long seg_stride_ = 1;
  ir::Analysis analysis_;
  double score_norm_ = 1;
  double cut_norm_ = 1;
  std::vector<std::uint64_t> occ_fp_;  // node id -> occupancy fingerprint

  // --- flat-table accessors ---

  double& clientDp(int node, int j) {
    return buf_.client_dp[static_cast<std::size_t>(node) *
                              static_cast<std::size_t>(stride_) +
                          static_cast<std::size_t>(j)];
  }
  int& clientChoice(int node, int j) {
    return buf_.client_choice[static_cast<std::size_t>(node) *
                                  static_cast<std::size_t>(stride_) +
                              static_cast<std::size_t>(j)];
  }
  double& serverDp(int t, int j) {
    return buf_.server_dp[static_cast<std::size_t>(t) *
                              static_cast<std::size_t>(stride_) +
                          static_cast<std::size_t>(j)];
  }
  int& serverChoice(int t, int j) {
    return buf_.server_choice[static_cast<std::size_t>(t) *
                                  static_cast<std::size_t>(stride_) +
                              static_cast<std::size_t>(j)];
  }
  Segment& segSlot(int node, int i, int j) {
    return buf_.seg_cache[static_cast<std::size_t>(node) *
                              static_cast<std::size_t>(seg_stride_) +
                          static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(stride_) +
                          static_cast<std::size_t>(j)];
  }

  void computeOccFingerprints() {
    occ_fp_.assign(static_cast<std::size_t>(topo_.nodeCount()), 0);
    for (const auto& n : topo_.nodes()) {
      // A sparse domain snapshot carries only its pod's devices; the DP
      // never places on (so never reads the fingerprint of) the rest.
      if (n.programmable && occ_.contains(n.id)) {
        occ_fp_[static_cast<std::size_t>(n.id)] =
            occupancyFingerprint(occ_.of(n.id));
      }
    }
  }

  // Content fingerprint of block range [i, j), salted with the search
  // options that change placeOn results; computed lazily per range on the
  // sequential path. The parallel path precomputes every range up front
  // (precomputeSegFingerprints), so this lazy fill never races.
  std::uint64_t segFp(int i, int j) {
    const std::size_t idx = static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(stride_) +
                            static_cast<std::size_t>(j);
    if (!buf_.seg_fp_set[idx]) {
      std::uint64_t h =
          segmentFingerprint(dag_.prog(), analysis_, dag_.instrsOf(i, j));
      h = mix64(h ^ (opts_.prune
                         ? 0x51ULL
                         : mix64(0x52ULL ^ static_cast<std::uint64_t>(
                                               opts_.max_steps))));
      buf_.seg_fp[idx] = h;
      buf_.seg_fp_set[idx] = 1;
    }
    return buf_.seg_fp[idx];
  }

  // Eagerly fingerprint every block range so parallel tasks read the
  // tables without synchronization. Distinct (i, j) slots are distinct
  // memory locations, so the fill itself fans out on the pool; the
  // parallelFor join publishes the writes to every later task.
  void precomputeSegFingerprints() {
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(static_cast<std::size_t>(m_ + 1) *
                  static_cast<std::size_t>(m_ + 2) / 2);
    for (int i = 0; i <= m_; ++i) {
      for (int j = i; j <= m_; ++j) pairs.push_back({i, j});
    }
    pool_->parallelFor(pairs.size(), [&](std::size_t k) {
      segFp(pairs[k].first, pairs[k].second);
    });
  }

  // Single post-order traversal over the client tree (server-side nodes
  // are forced to 1.0 below; they never appear in children lists).
  void computeTrafficFrac() {
    const double total = std::max(1e-9, tree_.total_traffic);
    std::vector<double> subtree(tree_.nodes.size(), 0.0);
    std::vector<int> order;
    order.reserve(tree_.nodes.size());
    std::vector<int> stack = {tree_.root};
    while (!stack.empty()) {
      const int n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (int c : tree_.at(n).children) stack.push_back(c);
    }
    // Reverse pre-order visits every child before its parent.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int n = *it;
      double sum = tree_.at(n).leaf_traffic;
      for (int c : tree_.at(n).children) {
        sum += subtree[static_cast<std::size_t>(c)];
      }
      subtree[static_cast<std::size_t>(n)] = sum;
    }
    for (std::size_t i = 0; i < tree_.nodes.size(); ++i) {
      buf_.traffic_frac[i] =
          tree_.nodes[i].server_side ? 1.0 : subtree[i] / total;
    }
    buf_.traffic_frac[static_cast<std::size_t>(tree_.root)] = 1.0;
  }

  // One intra-device placement of blocks [i, j) on `dev`, memoized by
  // (occupancy fingerprint, segment fingerprint) on the fast path so every
  // identical (device state, segment) pair pays for a single search. The
  // memo claim is exactly-once even under the pool: concurrent requests
  // for one key elect a single leader to run the search and the rest wait
  // for its published result, keeping intra_calls / steps deterministic.
  IntraPlacement placeOn(int dev, int i, int j, WorkCtx& ctx) {
    const DeviceOccupancy& occ = occ_.of(dev);
    MemoKey key;
    IntraMemo::Claim claim;
    if (opts_.fast) {
      key = {occ_fp_[static_cast<std::size_t>(dev)], segFp(i, j)};
      IntraPlacement cached;
      claim = arena_->memo().claim(key, &cached);
      if (!claim.leader) {
        ++ctx.stats.intra_memo_hits;
        cached.instr_idxs = dag_.instrsOf(i, j);  // remap to this program
        cached.steps = 0;                         // no search performed
        return cached;
      }
    }
    ++ctx.stats.intra_calls;
    const std::vector<int> instrs = dag_.instrsOf(i, j);
    IntraPlacement p;
    try {
      p = opts_.prune
              ? placeCompact(occ, dag_.prog(), instrs, 0, &analysis_)
              : placeExhaustive(occ, dag_.prog(), instrs, opts_.max_steps, 0,
                                &analysis_);
    } catch (...) {
      // Followers may be blocked on this claim; never leave it
      // unpublished — but never cache a fabricated result either (the
      // arena memo outlives this run). publishError wakes waiters and
      // lets the next claimant re-lead.
      if (opts_.fast) arena_->memo().publishError(claim);
      throw;
    }
    ctx.steps += p.steps;
    if (opts_.fast) arena_->memo().publish(claim, p);
    return p;
  }

  // `count_probe == false` is the parallel prefill: it fills the slot
  // (counting the miss) without counting a lookup, so that the DP loop's
  // own probe — now a guaranteed hit — keeps seg_probes identical to the
  // sequential run.
  const Segment* cachedSegment(int node, int i, int j, WorkCtx& ctx,
                               bool count_probe = true) {
    Segment& seg = segSlot(node, i, j);
    if (count_probe) ++ctx.stats.seg_probes;
    if (seg.state == Segment::State::kDone) return &seg;
    ++ctx.stats.seg_misses;
    seg.state = Segment::State::kDone;
    if (i == j) {
      seg.feasible = true;
      return &seg;
    }
    const auto& tn = tree_.at(node);
    // Stateful segments need full traffic visibility: a partial-traffic
    // node (leaf branch) would hold a replica that never sees the other
    // paths' packets, breaking aggregation/caching semantics.
    if (dag_.statefulIn(i, j) &&
        buf_.traffic_frac[static_cast<std::size_t>(node)] < 0.999) {
      seg.monotone_infeasible = true;  // supersets stay stateful
      return &seg;
    }
    // Non-programmable devices (plain switches on the path) can only pass
    // traffic through: empty segments only.
    for (int dev : tn.devices) {
      if (!topo_.node(dev).programmable) {
        seg.monotone_infeasible = true;
        return &seg;
      }
    }
    // Try the whole segment on the EC's main devices.
    bool all_ok = true;
    std::map<int, IntraPlacement> main;
    for (int dev : tn.devices) {
      IntraPlacement p = placeOn(dev, i, j, ctx);
      if (!p.feasible) {
        all_ok = false;
        break;
      }
      main.emplace(dev, std::move(p));
    }
    if (all_ok) {
      seg.feasible = true;
      seg.on_device = std::move(main);
      seg.resource_score = dag_.scoreOf(i, j) *
                           static_cast<double>(tn.devices.size());
      return &seg;
    }
    // Overflow onto the bypass accelerator: main [i, k), bypass [k, j).
    if (tn.bypass != nullptr) {
      for (int k = j - 1; k >= i; --k) {
        std::map<int, IntraPlacement> on_main, on_acc;
        bool ok = true;
        for (int dev : tn.devices) {
          const int acc = topo_.node(dev).attached_accel;
          if (acc < 0) {
            ok = false;
            break;
          }
          IntraPlacement pm = placeOn(dev, i, k, ctx);
          IntraPlacement pa = placeOn(acc, k, j, ctx);
          if (!pm.feasible || !pa.feasible) {
            ok = false;
            break;
          }
          on_main.emplace(dev, std::move(pm));
          on_acc.emplace(acc, std::move(pa));
        }
        if (!ok) continue;
        seg.feasible = true;
        seg.bypass_from = k;
        seg.on_device = std::move(on_main);
        seg.on_bypass = std::move(on_acc);
        seg.resource_score = dag_.scoreOf(i, j) *
                             static_cast<double>(tn.devices.size());
        seg.internal_cut_bits = k > i && k < j ? dag_.cutBits(k) : 0;
        break;
      }
    }
    if (!seg.feasible) seg.monotone_infeasible = opsUnplaceable(tn, i, j);
    return &seg;
  }

  // Some instruction in [i, j) is unsupported by the EC's main model and
  // by its bypass (or there is none): no split of any superset can host
  // it, so the infeasibility is monotone in j.
  bool opsUnplaceable(const topo::EcTreeNode& tn, int i, int j) {
    for (int idx : dag_.instrsOf(i, j)) {
      const auto op = dag_.prog().instrs[static_cast<std::size_t>(idx)].op;
      if (!tn.model->supportsOpcode(op) &&
          (tn.bypass == nullptr || !tn.bypass->supportsOpcode(op))) {
        return true;
      }
    }
    return false;
  }

  double segCost(int node, int i, int j, WorkCtx& ctx) {
    return segCostOf(node, cachedSegment(node, i, j, ctx), i, j);
  }

  double segCostOf(int node, const Segment* seg, int i, int j) {
    if (!seg->feasible) return kInf;
    if (i == j) return 0;
    // Epsilon tie-break toward the earliest position on the path (the
    // paper packs user logic "as early as possible"; early aggregation
    // also drops traffic sooner).
    const double eps = 1e-6 *
                       buf_.hop_order[static_cast<std::size_t>(node)] *
                       static_cast<double>(j - i);
    return weights_.wr * seg->resource_score / score_norm_ +
           weights_.wp * 0.25 *
               static_cast<double>(seg->internal_cut_bits) / cut_norm_ +
           eps;
  }

  // Distance of each node from the traffic sources: leaves first.
  void computeHopOrder() {
    buf_.hop_order.assign(tree_.nodes.size(), 0.0);
    std::vector<int> depth(tree_.nodes.size(), 0);
    int maxd = 0;
    std::vector<int> stack = {tree_.root};
    while (!stack.empty()) {
      const int n = stack.back();
      stack.pop_back();
      for (int c : tree_.at(n).children) {
        depth[static_cast<std::size_t>(c)] =
            depth[static_cast<std::size_t>(n)] + 1;
        maxd = std::max(maxd, depth[static_cast<std::size_t>(c)]);
        stack.push_back(c);
      }
    }
    for (std::size_t n = 0; n < tree_.nodes.size(); ++n) {
      buf_.hop_order[n] = static_cast<double>(maxd - depth[n]);
    }
    for (std::size_t tpos = 0; tpos < tree_.server_chain.size(); ++tpos) {
      buf_.hop_order[static_cast<std::size_t>(tree_.server_chain[tpos])] =
          static_cast<double>(maxd) + 1.0 + static_cast<double>(tpos);
    }
  }

  double entryCharge(int node, int i, int j) {
    if (i <= 0 || i >= m_ || i == j) return 0;
    return weights_.wp * dag_.cutBits(i) *
           buf_.traffic_frac[static_cast<std::size_t>(node)] / cut_norm_;
  }

  // Fills the segment slots the node's DP loop will probe. The pair list
  // is derived from the children's finished DP tables — exactly the set
  // the sequential loop would touch, no more — so cache counters match
  // the sequential run and no segment is computed speculatively.
  void prefillNodeSegments(int node, WorkCtx& ctx) {
    const auto& children = tree_.at(node).children;
    std::vector<std::uint8_t> i_ok(static_cast<std::size_t>(m_) + 1, 1);
    for (int i = 0; i <= m_; ++i) {
      for (int c : children) {
        if (clientDp(c, i) == kInf) {
          i_ok[static_cast<std::size_t>(i)] = 0;
          break;
        }
      }
    }
    std::vector<std::pair<int, int>> pairs;
    for (int j = 0; j <= m_; ++j) {
      for (int i = 0; i <= j; ++i) {
        if (children.empty() && i != 0) break;
        if (!i_ok[static_cast<std::size_t>(i)]) continue;
        pairs.push_back({i, j});
      }
    }
    if (pairs.size() < 2) return;
    std::vector<WorkCtx> sub(pairs.size());
    ctx.stats.parallel_tasks += static_cast<long>(pairs.size());
    pool_->parallelFor(pairs.size(), [&](std::size_t k) {
      cachedSegment(node, pairs[k].first, pairs[k].second, sub[k],
                    /*count_probe=*/false);
    });
    for (auto& s : sub) ctx.merge(s);
  }

  void solveClient(int node, WorkCtx& ctx) {
    const auto& children = tree_.at(node).children;
    if (pool_ != nullptr && children.size() > 1) {
      // Sibling subtrees touch disjoint DP rows and segment slots; each
      // solves in its own task (recursively fanning out further).
      std::vector<WorkCtx> sub(children.size());
      ctx.stats.parallel_tasks += static_cast<long>(children.size());
      pool_->parallelFor(children.size(), [&](std::size_t k) {
        solveClient(children[static_cast<std::size_t>(k)], sub[k]);
      });
      for (auto& s : sub) ctx.merge(s);
    } else {
      for (int c : children) solveClient(c, ctx);
    }
    if (pool_ != nullptr) prefillNodeSegments(node, ctx);
    for (int j = 0; j <= m_; ++j) {
      for (int i = 0; i <= j; ++i) {
        // Leaves must start the program themselves.
        if (children.empty() && i != 0) break;
        double child_sum = 0;
        for (int c : children) {
          const double hc = clientDp(c, i);
          if (hc == kInf) {
            child_sum = kInf;
            break;
          }
          child_sum += hc;
        }
        if (child_sum == kInf) continue;
        const double seg = segCost(node, i, j, ctx);
        if (seg == kInf) continue;
        const double total = child_sum + seg + entryCharge(node, i, j);
        if (total < clientDp(node, j)) {
          clientDp(node, j) = total;
          clientChoice(node, j) = i;
        }
      }
    }
  }

  // One row of the server-chain DP: T[t][j] over all j2. Kept as the
  // single implementation for both the sequential loop and the
  // row-parallel path so scan order and early exits cannot diverge.
  void serverRow(int t, int node, int j, WorkCtx& ctx) {
    for (int j2 = j; j2 <= m_; ++j2) {
      const double tail = serverDp(t + 1, j2);
      if (tail == kInf) continue;
      const Segment* s = cachedSegment(node, j, j2, ctx);
      if (!s->feasible) {
        // Early exit only on provably monotone causes: segments only
        // grow with j2, so a failure that persists for supersets
        // (unsupported opcode, non-programmable EC, stateful gating)
        // rules out every larger j2. Resource-driven failures may
        // not, so those keep scanning.
        if (opts_.fast && s->monotone_infeasible) {
          ++ctx.stats.early_breaks;
          break;
        }
        continue;
      }
      const double seg = segCostOf(node, s, j, j2);
      const double entry = entryCharge(node, j, j2);
      const double total = seg + entry + tail;
      double& cell = serverDp(t, j);
      if (total < cell) {
        cell = total;
        serverChoice(t, j) = j2;
      }
    }
  }

  void emitAssignment(int node, int i, int j, PlacementPlan* plan,
                      WorkCtx& ctx) {
    NodeAssignment a;
    a.tree_node = node;
    a.from_block = i;
    a.to_block = j;
    const Segment* seg = cachedSegment(node, i, j, ctx);
    CLICKINC_CHECK(seg->feasible, "backtracked into infeasible segment");
    a.bypass_from = seg->bypass_from;
    a.on_device = seg->on_device;
    a.on_bypass = seg->on_bypass;
    plan->assignments.push_back(std::move(a));
  }

  void backtrackClient(int node, int j, PlacementPlan* plan, WorkCtx& ctx) {
    const int i = clientChoice(node, j);
    CLICKINC_CHECK(i >= 0, "no choice recorded");
    emitAssignment(node, i, j, plan, ctx);
    for (int c : tree_.at(node).children) backtrackClient(c, i, plan, ctx);
  }
};

}  // namespace

PlacementPlan placeProgram(const BlockDag& dag, const topo::EcTree& tree,
                           const topo::Topology& topo,
                           const OccupancyMap& occ,
                           const PlacementOptions& opts,
                           PlacementArena* arena) {
  TreePlacer placer(dag, tree, topo, occ, opts, arena);
  return placer.run();
}

void commitPlan(const PlacementPlan& plan, const ir::IrProgram& prog,
                OccupancyMap& occ) {
  CLICKINC_CHECK(plan.feasible, "cannot commit infeasible plan");
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (!p.instr_idxs.empty()) commitPlacement(occ.of(dev), prog, p);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      if (!p.instr_idxs.empty()) commitPlacement(occ.of(dev), prog, p);
    }
  }
}

}  // namespace clickinc::place
