#include "place/treedp.h"

#include <chrono>
#include <functional>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/strings.h"

namespace clickinc::place {

Weights adaptiveWeights(double remaining_ratio) {
  Weights w;
  w.wt = 0.5;
  w.wr = 1.0 - std::pow(2.0, remaining_ratio - 1.0);
  w.wp = 0.5 - w.wr;
  return w;
}

OccupancyMap::OccupancyMap(const topo::Topology* topo) : topo_(topo) {
  for (const auto& n : topo->nodes()) {
    if (n.programmable) {
      map_.emplace(n.id, DeviceOccupancy::fresh(n.model));
    }
  }
}

DeviceOccupancy& OccupancyMap::of(int node_id) {
  auto it = map_.find(node_id);
  CLICKINC_CHECK(it != map_.end(), "node is not programmable");
  return it->second;
}

const DeviceOccupancy& OccupancyMap::of(int node_id) const {
  auto it = map_.find(node_id);
  CLICKINC_CHECK(it != map_.end(), "node is not programmable");
  return it->second;
}

double OccupancyMap::remainingRatio() const {
  if (map_.empty()) return 1.0;
  double sum = 0;
  for (const auto& [id, occ] : map_) {
    (void)id;
    sum += occ.remainingRatio();
  }
  return sum / static_cast<double>(map_.size());
}

std::vector<int> PlacementPlan::devicesUsed() const {
  std::vector<int> out;
  for (const auto& a : assignments) {
    if (a.to_block <= a.from_block) continue;
    for (const auto& [dev, p] : a.on_device) {
      (void)p;
      out.push_back(dev);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      (void)p;
      out.push_back(dev);
    }
  }
  return out;
}

int PlacementPlan::blocksOn(int tree_node) const {
  for (const auto& a : assignments) {
    if (a.tree_node == tree_node) return a.to_block - a.from_block;
  }
  return 0;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A memoized segment placement on one EC node.
struct Segment {
  bool feasible = false;
  int bypass_from = -1;
  std::map<int, IntraPlacement> on_device;
  std::map<int, IntraPlacement> on_bypass;
  double resource_score = 0;  // summed over replicated devices
  int internal_cut_bits = 0;
  long steps = 0;
};

class TreePlacer {
 public:
  TreePlacer(const BlockDag& dag, const topo::EcTree& tree,
             const topo::Topology& topo, const OccupancyMap& occ,
             const PlacementOptions& opts)
      : dag_(dag), tree_(tree), topo_(topo), occ_(occ), opts_(opts) {
    m_ = dag.size();
    analysis_ = ir::analyzeProgram(dag.prog());
    weights_ = opts.adaptive ? adaptiveWeights(occ.remainingRatio())
                             : opts.weights;
    // Normalizers for h_r / h_p.
    score_norm_ = std::max(1.0, dag.totalScore());
    double cut_total = 0;
    for (int i = 1; i < m_; ++i) cut_total += dag.cutBits(i);
    cut_norm_ = std::max(1.0, cut_total);
    seg_cache_.resize(tree_.nodes.size());
    traffic_frac_.assign(tree_.nodes.size(), 0.0);
    computeTrafficFrac();
    computeHopOrder();
  }

  PlacementPlan run() {
    const auto t0 = std::chrono::steady_clock::now();
    PlacementPlan plan;
    plan.weights_used = weights_;

    if (m_ == 0) {
      plan.feasible = true;
      plan.ht = 1;
      return plan;
    }

    // Client side (includes the root).
    solveClient(tree_.root);

    // Server chain, backwards: T[t][j] = cost of placing [j, m) on chain
    // nodes t..end.
    const int chain_len = static_cast<int>(tree_.server_chain.size());
    server_dp_.assign(static_cast<std::size_t>(chain_len) + 1,
                      std::vector<double>(static_cast<std::size_t>(m_) + 1,
                                          kInf));
    server_choice_.assign(static_cast<std::size_t>(chain_len),
                          std::vector<int>(static_cast<std::size_t>(m_) + 1,
                                           -1));
    server_dp_[static_cast<std::size_t>(chain_len)]
              [static_cast<std::size_t>(m_)] = 0;
    for (int t = chain_len - 1; t >= 0; --t) {
      const int node = tree_.server_chain[static_cast<std::size_t>(t)];
      for (int j = 0; j <= m_; ++j) {
        for (int j2 = j; j2 <= m_; ++j2) {
          const double tail = server_dp_[static_cast<std::size_t>(t) + 1]
                                        [static_cast<std::size_t>(j2)];
          if (tail == kInf) continue;
          const double seg = segCost(node, j, j2);
          if (seg == kInf) continue;
          const double entry = entryCharge(node, j, j2);
          const double total = seg + entry + tail;
          auto& cell = server_dp_[static_cast<std::size_t>(t)]
                                 [static_cast<std::size_t>(j)];
          if (total < cell) {
            cell = total;
            server_choice_[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(j)] = j2;
          }
        }
      }
    }

    // Join at the root.
    double best = kInf;
    int best_b = -1;
    const auto& rootH = client_dp_.at(tree_.root);
    for (int b = 0; b <= m_; ++b) {
      const double left = rootH[static_cast<std::size_t>(b)];
      if (left == kInf) continue;
      const double right =
          chain_len == 0
              ? (b == m_ ? 0.0 : kInf)
              : server_dp_[0][static_cast<std::size_t>(b)];
      if (right == kInf) continue;
      if (left + right < best) {
        best = left + right;
        best_b = b;
      }
    }
    plan.steps = steps_;
    plan.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (best_b < 0) {
      plan.failure = "no feasible placement covers all paths";
      return plan;
    }

    // Backtrack client side then server chain.
    backtrackClient(tree_.root, best_b, &plan);
    int j = best_b;
    for (int t = 0; t < chain_len; ++t) {
      const int node = tree_.server_chain[static_cast<std::size_t>(t)];
      const int j2 = server_choice_[static_cast<std::size_t>(t)]
                                   [static_cast<std::size_t>(j)];
      emitAssignment(node, j, j2, &plan);
      j = j2;
    }

    plan.feasible = true;
    plan.ht = 1.0;
    double res = 0;
    double cut = 0;
    for (const auto& a : plan.assignments) {
      const Segment& seg = *cachedSegment(a.tree_node, a.from_block,
                                          a.to_block);
      res += seg.resource_score;
      cut += static_cast<double>(seg.internal_cut_bits) * 0.25;
      if (a.from_block > 0 && a.to_block > a.from_block) {
        cut += dag_.cutBits(a.from_block) *
               traffic_frac_[static_cast<std::size_t>(a.tree_node)];
      }
    }
    plan.hr = res / score_norm_;
    plan.hp = cut / cut_norm_;
    plan.gain = weights_.wt * plan.ht - weights_.wr * plan.hr -
                weights_.wp * plan.hp;
    return plan;
  }

 private:
  const BlockDag& dag_;
  const topo::EcTree& tree_;
  const topo::Topology& topo_;
  const OccupancyMap& occ_;
  PlacementOptions opts_;
  Weights weights_;
  int m_ = 0;
  ir::Analysis analysis_;
  double score_norm_ = 1;
  double cut_norm_ = 1;
  long steps_ = 0;

  std::map<int, std::vector<double>> client_dp_;   // node -> H[j]
  std::map<int, std::vector<int>> client_choice_;  // node -> chosen i per j
  std::vector<std::vector<double>> server_dp_;
  std::vector<std::vector<int>> server_choice_;
  std::vector<std::map<long, Segment>> seg_cache_;  // per tree node
  std::vector<double> traffic_frac_;
  std::vector<double> hop_order_;

  void computeTrafficFrac() {
    // Post-order accumulation of leaf traffic; server side carries all.
    const double total = std::max(1e-9, tree_.total_traffic);
    std::vector<double> subtree(tree_.nodes.size(), 0.0);
    // Children lists give the client tree; iterate until fixpoint (tree is
    // shallow; a simple repeated relaxation is fine and avoids recursion).
    for (std::size_t i = 0; i < tree_.nodes.size(); ++i) {
      subtree[i] = tree_.nodes[i].leaf_traffic;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < tree_.nodes.size(); ++i) {
        double sum = tree_.nodes[i].leaf_traffic;
        for (int c : tree_.nodes[i].children) {
          sum += subtree[static_cast<std::size_t>(c)];
        }
        if (sum != subtree[i]) {
          subtree[i] = sum;
          changed = true;
        }
      }
    }
    for (std::size_t i = 0; i < tree_.nodes.size(); ++i) {
      traffic_frac_[i] =
          tree_.nodes[i].server_side ? 1.0 : subtree[i] / total;
    }
    traffic_frac_[static_cast<std::size_t>(tree_.root)] = 1.0;
  }

  IntraPlacement placeOn(const DeviceOccupancy& occ,
                         const std::vector<int>& instrs) {
    IntraPlacement p =
        opts_.prune ? placeCompact(occ, dag_.prog(), instrs, 0, &analysis_)
                    : placeExhaustive(occ, dag_.prog(), instrs,
                                      opts_.max_steps, 0, &analysis_);
    steps_ += p.steps;
    return p;
  }

  const Segment* cachedSegment(int node, int i, int j) {
    auto& cache = seg_cache_[static_cast<std::size_t>(node)];
    const long key = static_cast<long>(i) * (m_ + 1) + j;
    auto it = cache.find(key);
    if (it != cache.end()) return &it->second;

    Segment seg;
    if (i == j) {
      seg.feasible = true;
      cache.emplace(key, std::move(seg));
      return &cache.at(key);
    }
    const auto& tn = tree_.at(node);
    // Stateful segments need full traffic visibility: a partial-traffic
    // node (leaf branch) would hold a replica that never sees the other
    // paths' packets, breaking aggregation/caching semantics.
    if (dag_.statefulIn(i, j) &&
        traffic_frac_[static_cast<std::size_t>(node)] < 0.999) {
      cache.emplace(key, std::move(seg));
      return &cache.at(key);
    }
    // Non-programmable devices (plain switches on the path) can only pass
    // traffic through: empty segments only.
    for (int dev : tn.devices) {
      if (!topo_.node(dev).programmable) {
        cache.emplace(key, std::move(seg));
        return &cache.at(key);
      }
    }
    // Try the whole segment on the EC's main devices.
    bool all_ok = true;
    std::map<int, IntraPlacement> main;
    for (int dev : tn.devices) {
      IntraPlacement p = placeOn(occ_.of(dev), dag_.instrsOf(i, j));
      if (!p.feasible) {
        all_ok = false;
        break;
      }
      main.emplace(dev, std::move(p));
    }
    if (all_ok) {
      seg.feasible = true;
      seg.on_device = std::move(main);
      seg.resource_score = dag_.scoreOf(i, j) *
                           static_cast<double>(tn.devices.size());
      cache.emplace(key, std::move(seg));
      return &cache.at(key);
    }
    // Overflow onto the bypass accelerator: main [i, k), bypass [k, j).
    if (tn.bypass != nullptr) {
      for (int k = j - 1; k >= i; --k) {
        std::map<int, IntraPlacement> on_main, on_acc;
        bool ok = true;
        for (int dev : tn.devices) {
          const int acc = topo_.node(dev).attached_accel;
          if (acc < 0) {
            ok = false;
            break;
          }
          IntraPlacement pm = placeOn(occ_.of(dev), dag_.instrsOf(i, k));
          IntraPlacement pa = placeOn(occ_.of(acc), dag_.instrsOf(k, j));
          if (!pm.feasible || !pa.feasible) {
            ok = false;
            break;
          }
          on_main.emplace(dev, std::move(pm));
          on_acc.emplace(acc, std::move(pa));
        }
        if (!ok) continue;
        seg.feasible = true;
        seg.bypass_from = k;
        seg.on_device = std::move(on_main);
        seg.on_bypass = std::move(on_acc);
        seg.resource_score = dag_.scoreOf(i, j) *
                             static_cast<double>(tn.devices.size());
        seg.internal_cut_bits = k > i && k < j ? dag_.cutBits(k) : 0;
        break;
      }
    }
    cache.emplace(key, std::move(seg));
    return &cache.at(key);
  }

  double segCost(int node, int i, int j) {
    const Segment* seg = cachedSegment(node, i, j);
    if (!seg->feasible) return kInf;
    if (i == j) return 0;
    // Epsilon tie-break toward the earliest position on the path (the
    // paper packs user logic "as early as possible"; early aggregation
    // also drops traffic sooner).
    const double eps = 1e-6 * hop_order_[static_cast<std::size_t>(node)] *
                       static_cast<double>(j - i);
    return weights_.wr * seg->resource_score / score_norm_ +
           weights_.wp * 0.25 *
               static_cast<double>(seg->internal_cut_bits) / cut_norm_ +
           eps;
  }

  // Distance of each node from the traffic sources: leaves first.
  void computeHopOrder() {
    hop_order_.assign(tree_.nodes.size(), 0.0);
    // Depth from root within the client tree.
    std::vector<int> depth(tree_.nodes.size(), 0);
    int maxd = 0;
    std::function<void(int)> walk = [&](int n) {
      for (int c : tree_.at(n).children) {
        depth[static_cast<std::size_t>(c)] =
            depth[static_cast<std::size_t>(n)] + 1;
        maxd = std::max(maxd, depth[static_cast<std::size_t>(c)]);
        walk(c);
      }
    };
    walk(tree_.root);
    for (std::size_t n = 0; n < tree_.nodes.size(); ++n) {
      hop_order_[n] = static_cast<double>(maxd - depth[n]);
    }
    for (std::size_t tpos = 0; tpos < tree_.server_chain.size(); ++tpos) {
      hop_order_[static_cast<std::size_t>(tree_.server_chain[tpos])] =
          static_cast<double>(maxd) + 1.0 + static_cast<double>(tpos);
    }
  }

  double entryCharge(int node, int i, int j) {
    if (i <= 0 || i >= m_ || i == j) return 0;
    return weights_.wp * dag_.cutBits(i) *
           traffic_frac_[static_cast<std::size_t>(node)] / cut_norm_;
  }

  void solveClient(int node) {
    for (int c : tree_.at(node).children) solveClient(c);
    std::vector<double> H(static_cast<std::size_t>(m_) + 1, kInf);
    std::vector<int> choice(static_cast<std::size_t>(m_) + 1, -1);
    const auto& children = tree_.at(node).children;
    for (int j = 0; j <= m_; ++j) {
      for (int i = 0; i <= j; ++i) {
        // Leaves must start the program themselves.
        if (children.empty() && i != 0) break;
        double child_sum = 0;
        for (int c : children) {
          const double hc = client_dp_.at(c)[static_cast<std::size_t>(i)];
          if (hc == kInf) {
            child_sum = kInf;
            break;
          }
          child_sum += hc;
        }
        if (child_sum == kInf) continue;
        const double seg = segCost(node, i, j);
        if (seg == kInf) continue;
        const double total = child_sum + seg + entryCharge(node, i, j);
        if (total < H[static_cast<std::size_t>(j)]) {
          H[static_cast<std::size_t>(j)] = total;
          choice[static_cast<std::size_t>(j)] = i;
        }
      }
    }
    client_dp_[node] = std::move(H);
    client_choice_[node] = std::move(choice);
  }

  void emitAssignment(int node, int i, int j, PlacementPlan* plan) {
    NodeAssignment a;
    a.tree_node = node;
    a.from_block = i;
    a.to_block = j;
    const Segment* seg = cachedSegment(node, i, j);
    CLICKINC_CHECK(seg->feasible, "backtracked into infeasible segment");
    a.bypass_from = seg->bypass_from;
    a.on_device = seg->on_device;
    a.on_bypass = seg->on_bypass;
    plan->assignments.push_back(std::move(a));
  }

  void backtrackClient(int node, int j, PlacementPlan* plan) {
    const int i = client_choice_.at(node)[static_cast<std::size_t>(j)];
    CLICKINC_CHECK(i >= 0, "no choice recorded");
    emitAssignment(node, i, j, plan);
    for (int c : tree_.at(node).children) backtrackClient(c, i, plan);
  }
};

}  // namespace

PlacementPlan placeProgram(const BlockDag& dag, const topo::EcTree& tree,
                           const topo::Topology& topo,
                           const OccupancyMap& occ,
                           const PlacementOptions& opts) {
  TreePlacer placer(dag, tree, topo, occ, opts);
  return placer.run();
}

void commitPlan(const PlacementPlan& plan, const ir::IrProgram& prog,
                OccupancyMap& occ) {
  CLICKINC_CHECK(plan.feasible, "cannot commit infeasible plan");
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (!p.instr_idxs.empty()) commitPlacement(occ.of(dev), prog, p);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      if (!p.instr_idxs.empty()) commitPlacement(occ.of(dev), prog, p);
    }
  }
}

}  // namespace clickinc::place
