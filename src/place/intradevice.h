// Intra-device instruction placement (paper §5.4 Algorithm 2, Appendix D).
//
// Two search modes:
//  - placeCompact: the pruned DP. The paper's pruning (drop dominated
//    partial solutions, prefer stage-compact placements) collapses the
//    per-stage enumeration to earliest-feasible-stage list scheduling,
//    which is what this computes — in linear time per instruction.
//  - placeExhaustive: the unpruned enumeration over per-stage subsets
//    (what the SMT baseline effectively explores). Exponential; used by
//    the Fig. 14 ablations and Table 4 baseline with a step budget.
//
// State-sharing instructions are pinned to one stage per state object
// (hardware register arrays are bound to a single stage's SALU), and the
// per-(stage, state) SALU/table demand is counted once.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/demand.h"
#include "device/model.h"
#include "device/validate.h"
#include "ir/analysis.h"
#include "ir/program.h"
#include "util/crc.h"

namespace clickinc::place {

// Remaining free resources of one physical device.
struct DeviceOccupancy {
  const device::DeviceModel* model = nullptr;
  std::vector<device::ResourceDemand> free_stage;  // pipeline devices
  device::ResourceDemand free_whole;               // RTC / hybrid devices

  static DeviceOccupancy fresh(const device::DeviceModel& model);
  // Fraction of the device's scalar capacity still free, in [0, 1].
  double remainingRatio() const;
};

struct IntraPlacement {
  bool feasible = false;
  std::string why;              // failure diagnostics when infeasible
  std::vector<int> instr_idxs;  // program instruction indices
  std::vector<int> stage_of;    // parallel to instr_idxs (pipeline only)
  int stages_used = 0;
  device::ResourceDemand total;
  long steps = 0;               // search nodes explored
};

// Pruned placement of `instrs` (topologically ordered program indices)
// onto the device described by `occ`, starting no earlier than min_stage.
IntraPlacement placeCompact(const DeviceOccupancy& occ,
                            const ir::IrProgram& prog,
                            const std::vector<int>& instrs,
                            int min_stage = 0,
                            const ir::Analysis* an = nullptr);

// Unpruned enumeration (pipeline devices); explores every stage choice per
// instruction up to `max_steps` search nodes, returning the placement with
// the fewest stages found.
IntraPlacement placeExhaustive(const DeviceOccupancy& occ,
                               const ir::IrProgram& prog,
                               const std::vector<int>& instrs,
                               long max_steps, int min_stage = 0,
                               const ir::Analysis* an = nullptr);

// Fingerprint of a device's full free-resource state: model identity plus
// every per-stage (or whole-device) free vector. Two devices with equal
// fingerprints behave identically under placeCompact/placeExhaustive, so
// EC nodes with k identical replicas pay for one placement instead of k.
std::uint64_t occupancyFingerprint(const DeviceOccupancy& occ);

// Fingerprint of everything the intra-device placers consult about an
// instruction list: per-instruction opcode / demand / state shape, the
// dependency edges and SCC grouping restricted to the list (as local
// indices), and each referenced state's storage demand. Deliberately
// name-insensitive so identical templates submitted by different users
// share memo entries across programs.
std::uint64_t segmentFingerprint(const ir::IrProgram& prog,
                                 const ir::Analysis& an,
                                 const std::vector<int>& instrs);

// 128-bit memo key: (device model + occupancy) x (segment content + search
// options). Both halves are chained mix64 hashes.
struct MemoKey {
  std::uint64_t occ = 0;
  std::uint64_t seg = 0;
  bool operator==(const MemoKey&) const = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const {
    return static_cast<std::size_t>(k.occ ^ (k.seg * 0x9E3779B97F4A7C15ULL));
  }
};

// Cross-device / cross-program intra-placement memo. Entries stay valid as
// long as their key matches: committing resources changes a device's
// occupancy fingerprint, so stale entries are simply never hit again.
//
// Thread-safe and sharded by occupancy fingerprint (all segments of one
// device state land in one shard, so the worker-pool placement path
// contends only when threads genuinely work the same device class). The
// claim/publish pair gives exactly-once compute semantics: for a fixed
// multiset of requests the number of placeCompact invocations equals the
// number of distinct keys regardless of thread interleaving, which is
// what keeps PlacementStats and plan.steps bit-identical between the
// sequential and parallel placement paths.
class IntraMemo {
 public:
  // Handle of a claimed-but-unpublished slot (leader == true). The
  // claimant MUST publish() exactly once; followers block on the slot
  // until it does.
  struct Claim {
    bool leader = false;

   private:
    friend class IntraMemo;
    void* entry = nullptr;
    int shard = -1;
  };

  // Exactly-once lookup. On a hit (or after waiting out another thread's
  // in-flight compute) copies the placement into *out and returns a
  // non-leader claim. On a miss, reserves the slot and returns a leader
  // claim: the caller computes the placement and publish()es it — or, if
  // the computation throws, publishError()s so waiters elect a new
  // leader instead of inheriting a fabricated result.
  Claim claim(const MemoKey& key, IntraPlacement* out);
  void publish(const Claim& claim, const IntraPlacement& placement);
  void publishError(const Claim& claim);

  // Single-threaded convenience API (used by tests and one-shot callers).
  // The returned pointer is invalidated by the next mutation of the
  // key's shard — copy immediately.
  const IntraPlacement* find(const MemoKey& key);
  const IntraPlacement& put(const MemoKey& key, IntraPlacement placement);

  long hits() const;
  long misses() const;
  std::size_t size() const;
  void clear();  // callers must be quiescent (no in-flight claims)

 private:
  // Wholesale eviction bound per shard; placements are small and keyed by
  // occupancy, so a simple cap beats LRU bookkeeping on this path. Only
  // published entries with no registered waiters are evicted — a blocked
  // follower (or one woken but not yet rescheduled) holds a pointer to
  // its slot.
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMaxEntriesPerShard = (1 << 16) / kShards;

  struct Entry {
    IntraPlacement placement;
    bool ready = false;
    bool failed = false;  // leader threw; next claimant re-leads
    int waiters = 0;      // claims blocked on (or waking for) this slot
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable ready_cv;
    std::unordered_map<MemoKey, Entry, MemoKeyHash> map;
    long hits = 0;
    long misses = 0;
  };

  Shard& shardOf(const MemoKey& key) {
    return shards_[static_cast<std::size_t>(mix64(key.occ)) % kShards];
  }
  static void evictReady(Shard& shard);

  mutable std::array<Shard, kShards> shards_;
};

// Exact resources commitPlacement() subtracts for `placement`, re-derived
// from the program: per-stage vectors for pipeline devices (sized
// model.num_stages), the single whole-device vector otherwise. Pure — the
// verifier uses it to rebuild a device's claims independently of the live
// ledger. Requires a structurally valid placement (instruction indices in
// range; stage_of parallel to instr_idxs on pipeline devices).
DeviceOccupancy placementClaims(const ir::IrProgram& prog,
                                const IntraPlacement& placement,
                                const device::DeviceModel& model);

// Subtracts a feasible placement from the device's free resources.
void commitPlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                     const IntraPlacement& placement);

// Returns a previously committed placement's resources to the ledger
// (program removal records resources as released immediately, §6).
void releasePlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                      const IntraPlacement& placement);

}  // namespace clickinc::place
