// Intra-device instruction placement (paper §5.4 Algorithm 2, Appendix D).
//
// Two search modes:
//  - placeCompact: the pruned DP. The paper's pruning (drop dominated
//    partial solutions, prefer stage-compact placements) collapses the
//    per-stage enumeration to earliest-feasible-stage list scheduling,
//    which is what this computes — in linear time per instruction.
//  - placeExhaustive: the unpruned enumeration over per-stage subsets
//    (what the SMT baseline effectively explores). Exponential; used by
//    the Fig. 14 ablations and Table 4 baseline with a step budget.
//
// State-sharing instructions are pinned to one stage per state object
// (hardware register arrays are bound to a single stage's SALU), and the
// per-(stage, state) SALU/table demand is counted once.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/demand.h"
#include "device/model.h"
#include "device/validate.h"
#include "ir/analysis.h"
#include "ir/program.h"

namespace clickinc::place {

// Remaining free resources of one physical device.
struct DeviceOccupancy {
  const device::DeviceModel* model = nullptr;
  std::vector<device::ResourceDemand> free_stage;  // pipeline devices
  device::ResourceDemand free_whole;               // RTC / hybrid devices

  static DeviceOccupancy fresh(const device::DeviceModel& model);
  // Fraction of the device's scalar capacity still free, in [0, 1].
  double remainingRatio() const;
};

struct IntraPlacement {
  bool feasible = false;
  std::string why;              // failure diagnostics when infeasible
  std::vector<int> instr_idxs;  // program instruction indices
  std::vector<int> stage_of;    // parallel to instr_idxs (pipeline only)
  int stages_used = 0;
  device::ResourceDemand total;
  long steps = 0;               // search nodes explored
};

// Pruned placement of `instrs` (topologically ordered program indices)
// onto the device described by `occ`, starting no earlier than min_stage.
IntraPlacement placeCompact(const DeviceOccupancy& occ,
                            const ir::IrProgram& prog,
                            const std::vector<int>& instrs,
                            int min_stage = 0,
                            const ir::Analysis* an = nullptr);

// Unpruned enumeration (pipeline devices); explores every stage choice per
// instruction up to `max_steps` search nodes, returning the placement with
// the fewest stages found.
IntraPlacement placeExhaustive(const DeviceOccupancy& occ,
                               const ir::IrProgram& prog,
                               const std::vector<int>& instrs,
                               long max_steps, int min_stage = 0,
                               const ir::Analysis* an = nullptr);

// Subtracts a feasible placement from the device's free resources.
void commitPlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                     const IntraPlacement& placement);

// Returns a previously committed placement's resources to the ledger
// (program removal records resources as released immediately, §6).
void releasePlacement(DeviceOccupancy& occ, const ir::IrProgram& prog,
                      const IntraPlacement& placement);

}  // namespace clickinc::place
