// The tenant-facing submission API: structured errors with the right
// code/stage per failure cause, the request/ticket/commit lifecycle, and
// the deprecated shims' equivalence with the SubmitRequest path.
#include <gtest/gtest.h>

#include <future>

#include "core/service.h"
#include "modules/templates.h"
#include "place/intradevice.h"
#include "topo/topology.h"
#include "util/strings.h"

namespace clickinc::core {
namespace {

topo::TrafficSpec trafficFor(const ClickIncService& svc,
                             const std::vector<std::string>& srcs,
                             const std::string& dst) {
  topo::TrafficSpec spec;
  for (const auto& s : srcs) {
    spec.sources.push_back({svc.topology().findNode(s), 10.0});
  }
  spec.dst_host = svc.topology().findNode(dst);
  return spec;
}

SubmitRequest dqaccRequest(const ClickIncService& svc,
                           std::uint64_t depth = 128) {
  return SubmitRequest::fromTemplate("DQAcc",
                                     {{"CacheDepth", depth}, {"CacheLen", 2}},
                                     trafficFor(svc, {"pod0a"}, "pod2b"));
}

// --- error taxonomy -----------------------------------------------------

TEST(ServiceErrors, BadSourceYieldsParseErrorAtCompile) {
  ClickIncService svc(topo::Topology::paperEmulation());
  lang::HeaderSpec hdr;
  hdr.add("value", 32);
  const auto r = svc.submit(SubmitRequest::fromSource(
      "if hdr.value @@ 3:\n    fwd()\n", hdr, {},
      trafficFor(svc, {"pod0a"}, "pod2b")));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kParseError);
  EXPECT_EQ(r.error.stage, Stage::kCompile);
  EXPECT_FALSE(r.error.detail.empty());
  // No resources claimed, no user registered.
  EXPECT_TRUE(svc.deployments().empty());
}

TEST(ServiceErrors, UnknownTemplateYieldsItsOwnCode) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "NoSuchTemplate", {}, trafficFor(svc, {"pod0a"}, "pod2b")));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kUnknownTemplate);
  EXPECT_EQ(r.error.stage, Stage::kCompile);
  EXPECT_NE(r.error.detail.find("NoSuchTemplate"), std::string::npos);
}

TEST(ServiceErrors, NonProgrammablePathIsStructurallyInfeasible) {
  // client - plain switch - server: every EC on the path is
  // non-programmable, so no amount of free resources can ever help.
  topo::Topology t;
  topo::Node c;
  c.name = "client";
  c.kind = topo::NodeKind::kHost;
  const int cid = t.addNode(c);
  topo::Node d;
  d.name = "plainswitch";
  d.kind = topo::NodeKind::kSwitch;
  d.programmable = false;
  const int did = t.addNode(d);
  topo::Node s;
  s.name = "server";
  s.kind = topo::NodeKind::kHost;
  const int sid = t.addNode(s);
  t.addLink(cid, did);
  t.addLink(did, sid);

  ClickIncService svc(std::move(t));
  topo::TrafficSpec spec;
  spec.sources = {{cid, 10.0}};
  spec.dst_host = sid;
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}}, spec));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kInfeasible);
  EXPECT_EQ(r.error.stage, Stage::kCompile);
  EXPECT_FALSE(r.plan.resource_limited);
}

TEST(ServiceErrors, OccupancyExhaustionYieldsResourceExhausted) {
  // Keep submitting large MLAgg instances until the topology is full: the
  // first failure must be classified as resource exhaustion (the same
  // program placed fine when devices were empty), not as structural
  // infeasibility.
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto req = [&] {
    return SubmitRequest::fromTemplate(
        "MLAgg",
        {{"NumAgg", 100000}, {"Dim", 16}, {"NumWorker", 2}, {"IsConvert", 0}},
        trafficFor(svc, {"pod0a"}, "pod2b"));
  };
  SubmitResult last;
  int placed = 0;
  for (int i = 0; i < 64; ++i) {
    last = svc.submit(req());
    if (!last.ok) break;
    ++placed;
  }
  ASSERT_FALSE(last.ok) << "64 large instances all fit; grow the workload";
  EXPECT_GT(placed, 0);
  EXPECT_EQ(last.error.code, ErrorCode::kResourceExhausted);
  EXPECT_TRUE(last.plan.resource_limited);

  // Removing a tenant frees the resources: the same request fits again.
  const int victim = svc.deployments().begin()->first;
  ASSERT_TRUE(svc.remove(victim).ok);
  const auto retry = svc.submit(req());
  EXPECT_TRUE(retry.ok) << retry.error.message();
}

TEST(ServiceErrors, RemoveUnknownUserIsStructured) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.remove(4242);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kUnknownUser);
  EXPECT_EQ(r.error.stage, Stage::kRemove);
  EXPECT_TRUE(r.impact.affected_devices.empty());

  // Double-remove: the second call reports the same structured cause.
  const auto ok = svc.submit(dqaccRequest(svc));
  ASSERT_TRUE(ok.ok) << ok.error.message();
  EXPECT_TRUE(svc.remove(ok.user_id).ok);
  const auto again = svc.remove(ok.user_id);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error.code, ErrorCode::kUnknownUser);
}

TEST(ServiceErrors, MessageCarriesStageAndCode) {
  ServiceError e{ErrorCode::kResourceExhausted, Stage::kCommit, "pod full"};
  EXPECT_EQ(e.message(), "[commit] ResourceExhausted: pod full");
  EXPECT_FALSE(e.ok());
  ServiceError none;
  EXPECT_TRUE(none.ok());
  EXPECT_EQ(none.message(), "ok");
}

// --- lifecycle ----------------------------------------------------------

TEST(ServiceLifecycle, SubmitAssignsIdsInCommitOrderSkippingFailures) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto a = svc.submit(dqaccRequest(svc));
  const auto bad = svc.submit(SubmitRequest::fromTemplate(
      "NoSuchTemplate", {}, trafficFor(svc, {"pod0a"}, "pod2b")));
  const auto b = svc.submit(dqaccRequest(svc));
  ASSERT_TRUE(a.ok);
  ASSERT_FALSE(bad.ok);
  ASSERT_TRUE(b.ok);
  // Failed submissions do not consume ids.
  EXPECT_EQ(b.user_id, a.user_id + 1);
}

TEST(ServiceLifecycle, AsyncTicketJoinsToTheSameResultAsSync) {
  ClickIncService ref(topo::Topology::paperEmulation());
  const auto sync = ref.submit(dqaccRequest(ref));
  ASSERT_TRUE(sync.ok) << sync.error.message();

  ClickIncService svc(topo::Topology::paperEmulation());
  SubmissionTicket ticket = svc.submitAsync(dqaccRequest(svc));
  ASSERT_TRUE(ticket.valid());
  ticket.wait();
  EXPECT_EQ(ticket.status(), SubmissionTicket::Status::kReady);
  const auto& r = ticket.get();
  ASSERT_TRUE(r.ok) << r.error.message();
  EXPECT_EQ(r.user_id, sync.user_id);
  EXPECT_EQ(r.plan.gain, sync.plan.gain);
  EXPECT_EQ(r.impact.affected_devices, sync.impact.affected_devices);
  // get() is repeatable and copies share the result.
  SubmissionTicket copy = ticket;
  EXPECT_EQ(&copy.get(), &ticket.get());

  EXPECT_EQ(svc.deployments().count(r.user_id), 1u);
}

TEST(ServiceLifecycle, DefaultTicketIsInvalid) {
  SubmissionTicket ticket;
  EXPECT_FALSE(ticket.valid());
  EXPECT_EQ(ticket.status(), SubmissionTicket::Status::kInvalid);
  EXPECT_FALSE(ticket.done());
}

TEST(ServiceLifecycle, ConcurrentAsyncTenantsAllCommit) {
  ClickIncService svc(topo::Topology::paperEmulation());
  svc.setConcurrency(4);
  std::vector<SubmissionTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(svc.submitAsync(dqaccRequest(svc, 64 + 32 * i)));
  }
  std::set<int> users;
  for (auto& t : tickets) {
    const auto& r = t.get();
    ASSERT_TRUE(r.ok) << r.error.message();
    users.insert(r.user_id);
  }
  EXPECT_EQ(users.size(), 4u);  // distinct ids, every tenant deployed
  EXPECT_EQ(svc.deployments().size(), 4u);
}

TEST(ServiceLifecycle, RemoveDuringInFlightCompileCancelsAtCommit) {
  ClickIncService svc(topo::Topology::paperEmulation());

  // Block the async submission between its occupancy snapshot and the
  // compile, so the remove() below races a genuinely in-flight tenant.
  std::promise<void> reached, release;
  auto reached_f = reached.get_future();
  auto release_f = release.get_future().share();
  svc.setCompileGate([&reached, release_f]() mutable {
    reached.set_value();
    release_f.wait();
  });

  SubmissionTicket ticket = svc.submitAsync(dqaccRequest(svc));
  reached_f.wait();
  svc.setCompileGate(nullptr);

  // The tenant has not committed yet, so its id (the next to be issued)
  // is not in deployments — but an in-flight staged submission exists, so
  // remove() records the cancellation instead of kUnknownUser.
  const auto rm = svc.remove(1);
  EXPECT_TRUE(rm.ok) << rm.error.message();
  EXPECT_TRUE(rm.impact.affected_devices.empty());

  release.set_value();
  const auto& r = ticket.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kUnknownUser);
  EXPECT_EQ(r.error.stage, Stage::kCommit);
  EXPECT_FALSE(r.error.detail.empty());

  // Nothing deployed, no occupancy leaked: a fresh audit is clean and a
  // new submission gets the id the cancelled tenant never consumed.
  EXPECT_TRUE(svc.deployments().empty());
  EXPECT_TRUE(svc.verifyDeployments().ok());
  const auto next = svc.submit(dqaccRequest(svc));
  ASSERT_TRUE(next.ok) << next.error.message();
  EXPECT_EQ(next.user_id, 1);
}

TEST(ServiceLifecycle, SubmitAllFallsBackSequentiallyWithoutPool) {
  ClickIncService svc(topo::Topology::paperEmulation());
  ASSERT_EQ(svc.concurrency(), 1);
  std::vector<SubmitRequest> reqs;
  reqs.push_back(dqaccRequest(svc));
  reqs.push_back(dqaccRequest(svc));
  const auto results = svc.submitAll(std::move(reqs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[1].user_id, results[0].user_id + 1);
}

TEST(ServiceLifecycle, SubmitProgramPayloadKeepsCallerName) {
  ClickIncService svc(topo::Topology::paperEmulation());
  modules::ModuleLibrary lib;
  auto prog = lib.compileTemplate("DQAcc", "my_own_name",
                                  {{"CacheDepth", 64}, {"CacheLen", 2}});
  const auto r = svc.submit(SubmitRequest::fromProgram(
      std::move(prog), trafficFor(svc, {"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  EXPECT_EQ(svc.deployments().at(r.user_id).prog->name, "my_own_name");
}

// --- legacy shims -------------------------------------------------------

// The deprecated overloads must stay behaviorally identical to the
// SubmitRequest path while the ecosystem migrates. This block opts into
// the deprecated API on purpose; everything else builds clean under
// -DCLICKINC_WERROR_DEPRECATED=ON (the no-legacy-api CI job).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ServiceLegacyShims, TemplateShimMatchesSubmitRequest) {
  ClickIncService a(topo::Topology::paperEmulation());
  ClickIncService b(topo::Topology::paperEmulation());
  const auto ra = a.submitTemplate("DQAcc",
                                   {{"CacheDepth", 128}, {"CacheLen", 2}},
                                   trafficFor(a, {"pod0a"}, "pod2b"));
  const auto rb = b.submit(dqaccRequest(b));
  ASSERT_TRUE(ra.ok) << ra.error.message();
  ASSERT_TRUE(rb.ok) << rb.error.message();
  EXPECT_EQ(ra.user_id, rb.user_id);
  EXPECT_EQ(ra.plan.gain, rb.plan.gain);
  EXPECT_EQ(ra.impact.affected_devices, rb.impact.affected_devices);
}

TEST(ServiceLegacyShims, ShimReportsStructuredErrors) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submitTemplate("NoSuchTemplate", {},
                                    trafficFor(svc, {"pod0a"}, "pod2b"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kUnknownTemplate);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace clickinc::core
