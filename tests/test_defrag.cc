// Live defragmentation runtime (docs/defrag.md): fragmentation scorer and
// stranded-capacity diagnosis, deterministic victim selection, the
// make-before-break migration executor (zero-loss, verifier-clean,
// bit-identical across thread pools), rollback on mid-swap deploy
// failure, crash cuts landing on exactly one of {old, new} plan, the
// reactive targeted-compaction retry, defragment() racing the async
// pipeline, and the churn-driver cadence soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/service.h"
#include "defrag/defrag.h"
#include "durable/journal.h"
#include "durable/serialize.h"
#include "place/intradevice.h"
#include "scale/churn.h"
#include "scale/fattree.h"
#include "util/strings.h"

namespace clickinc {
namespace {

using core::ClickIncService;
using core::ErrorCode;
using core::MigrationOutcome;
using core::SubmitRequest;

scale::FatTree podTree() {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  return scale::buildFatTree(p);
}

topo::TrafficSpec intraPod(const scale::FatTree& ft, std::size_t pod,
                           std::size_t src = 0, std::size_t dst = 2) {
  topo::TrafficSpec traffic;
  traffic.sources.push_back({ft.pods[pod].hosts[src], 10.0});
  traffic.dst_host = ft.pods[pod].hosts[dst];
  return traffic;
}

SubmitRequest dqacc(topo::TrafficSpec traffic, std::uint64_t depth = 128) {
  return SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", depth}, {"CacheLen", 2}}, std::move(traffic));
}

// Full behavioural digest: occupancy fingerprints, per-tenant plan
// fingerprints, emulator deployment digest.
std::string digestOf(core::ClickIncService& svc) {
  std::string out;
  for (const auto& n : svc.topology().nodes()) {
    if (!n.programmable) continue;
    out += cat("occ", n.id, "=",
               place::occupancyFingerprint(svc.occupancy().of(n.id)), ";");
  }
  for (const auto& [user, dep] : svc.deployments()) {
    out += cat("u", user, "=", durable::planFingerprint(dep.plan), ";");
  }
  out += cat("emu=", svc.emulator().deploymentDigest());
  return out;
}

std::vector<defrag::TenantPlanView> viewsOf(const ClickIncService& svc) {
  std::vector<defrag::TenantPlanView> views;
  for (const auto& [user, dep] : svc.deployments()) {
    views.push_back({user, &dep.plan});
  }
  return views;
}

// Deterministically fragments the service: stack intra-pod-0 tenants of
// mixed sizes, then remove every other one. The survivors sit on devices
// whose pressure is far above the fabric mean — prime victims. Returns
// the survivors, ascending.
std::vector<int> fragmentPod(ClickIncService& svc, const scale::FatTree& ft,
                             int tenants = 8) {
  std::vector<int> all, survivors;
  for (int i = 0; i < tenants; ++i) {
    const auto r = svc.submit(
        dqacc(intraPod(ft, 0, static_cast<std::size_t>(i % 2),
                       static_cast<std::size_t>(2 + i % 2)),
              64ULL << (i % 3)));
    EXPECT_TRUE(r.ok) << r.error.message();
    if (r.ok) all.push_back(r.user_id);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_TRUE(svc.remove(all[i]).ok);
    } else {
      survivors.push_back(all[i]);
    }
  }
  return survivors;
}

defrag::DefragOptions aggressive() {
  defrag::DefragOptions opts;
  opts.hot_threshold = 0.0;  // any above-mean device with tenants is hot
  opts.max_hot_devices = 8;
  opts.max_migrations = 8;
  return opts;
}

// --- scorer / selector ---------------------------------------------------

TEST(FragScore, FreshFabricScoresZero) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  const auto rep = defrag::scoreFragmentation(
      svc.topology(), svc.occupancy(), {}, svc.domainIndex(), {});
  EXPECT_EQ(rep.frag_score, 0.0);
  EXPECT_TRUE(rep.hot.empty());
  EXPECT_EQ(rep.mean_free, 1.0);
  EXPECT_EQ(rep.min_free, 1.0);
}

TEST(FragScore, LoadedPodRanksHotDevicesByPressure) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  fragmentPod(svc, ft);
  const auto views = viewsOf(svc);
  const auto rep = defrag::scoreFragmentation(
      svc.topology(), svc.occupancy(), views, nullptr, aggressive());
  EXPECT_GT(rep.frag_score, 0.0);
  ASSERT_FALSE(rep.hot.empty());
  for (std::size_t i = 1; i < rep.hot.size(); ++i) {
    EXPECT_GE(rep.hot[i - 1].pressure, rep.hot[i].pressure);
  }
  for (const auto& h : rep.hot) {
    EXPECT_GT(h.tenants, 0) << "hot device " << h.node << " has no tenants";
  }
}

TEST(FragScore, VictimsAreDeterministicAndClaimTheirEvacuationSet) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  fragmentPod(svc, ft);
  const auto views = viewsOf(svc);
  const auto opts = aggressive();
  const auto rep = defrag::scoreFragmentation(
      svc.topology(), svc.occupancy(), views, nullptr, opts);
  const auto victims = defrag::selectVictims(rep, views, opts);
  ASSERT_FALSE(victims.empty());
  EXPECT_LE(static_cast<int>(victims.size()), opts.max_migrations);
  std::set<int> hot;
  for (const auto& h : rep.hot) hot.insert(h.node);
  std::set<int> seen;
  for (const auto& v : victims) {
    EXPECT_TRUE(seen.insert(v.user).second) << "duplicate victim " << v.user;
    ASSERT_FALSE(v.evacuate.empty());
    for (const int dev : v.evacuate) {
      EXPECT_EQ(hot.count(dev), 1u) << "evacuate target not hot";
    }
  }
  // Same inputs, same picks.
  const auto again = defrag::selectVictims(rep, views, opts);
  ASSERT_EQ(again.size(), victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(again[i].user, victims[i].user);
    EXPECT_EQ(again[i].evacuate, victims[i].evacuate);
  }
}

// --- stranded-capacity diagnostic (S1) -----------------------------------

TEST(StrandedDiagnostic, ResourceExhaustionCarriesFragmentationVerdict) {
  // Fill a single-switch chain until a submission fails on resources: a
  // one-device fabric cannot strand capacity, so the verdict must be true
  // exhaustion, spelled out in the error detail.
  ClickIncService svc(topo::Topology::chain({device::makeTofino()}));
  const auto& topo = svc.topology();
  topo::TrafficSpec traffic;
  traffic.sources.push_back({topo.findNode("client"), 10.0});
  traffic.dst_host = topo.findNode("server");
  core::SubmitResult failed;
  for (int i = 0; i < 64; ++i) {
    auto r = svc.submit(SubmitRequest::fromTemplate(
        "DQAcc", {{"CacheDepth", 4096}, {"CacheLen", 4}}, traffic));
    if (!r.ok) {
      failed = std::move(r);
      break;
    }
  }
  ASSERT_EQ(failed.error.code, ErrorCode::kResourceExhausted)
      << failed.error.message();
  EXPECT_FALSE(failed.error.stranded);
  EXPECT_NE(failed.error.detail.find("true exhaustion"), std::string::npos)
      << failed.error.detail;
}

// --- migration executor --------------------------------------------------

TEST(Defragment, NoopOnFreshService) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  const auto rep = svc.defragment(aggressive());
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.migrated, 0);
  EXPECT_TRUE(rep.migrations.empty());
  EXPECT_EQ(rep.drops_after, rep.drops_before);
}

TEST(Defragment, CompactsFragmentedPodZeroLossVerifierClean) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  fragmentPod(svc, ft);
  const auto live_before = svc.deployments().size();
  const auto rep = svc.defragment(aggressive());
  EXPECT_TRUE(rep.ok) << rep.error.message();
  EXPECT_EQ(rep.dropped, 0);
  ASSERT_GT(rep.migrated, 0) << "fixture produced no migratable victim";
  EXPECT_EQ(rep.migrated + rep.skipped + rep.rolled_back,
            static_cast<int>(rep.migrations.size()));
  // Zero-loss: the emulator drop counter must not move during the pass.
  EXPECT_EQ(rep.drops_after, rep.drops_before);
  // Make-before-break keeps every tenant deployed.
  EXPECT_EQ(svc.deployments().size(), live_before);
  // Bit-exact occupancy reconciliation: the full audit re-derives every
  // device ledger from the live plans and compares field by field.
  const auto audit = svc.verifyDeployments();
  EXPECT_TRUE(audit.ok()) << audit.summary();
  // The batch must not have made fragmentation worse.
  EXPECT_LE(rep.after.frag_score, rep.before.frag_score);
}

TEST(Defragment, DeterministicAcrossThreadPools) {
  std::string want;
  for (const int threads : {1, 2, 8}) {
    const auto ft = podTree();
    ClickIncService svc(ft.topo);
    fragmentPod(svc, ft);
    svc.setConcurrency(threads);
    const auto rep = svc.defragment(aggressive());
    EXPECT_TRUE(rep.ok) << rep.error.message();
    const std::string got =
        cat("migrated=", rep.migrated, ";skipped=", rep.skipped,
            ";rolled_back=", rep.rolled_back, ";", digestOf(svc));
    if (want.empty()) {
      want = got;
    } else {
      EXPECT_EQ(got, want) << "threads=" << threads;
    }
  }
}

TEST(Defragment, DeployFailureRollsBackToOldPlanNoLeak) {
  const auto ft = podTree();
  ClickIncService svc(ft.topo);
  fragmentPod(svc, ft);
  std::map<int, std::uint64_t> old_fp;
  for (const auto& [user, dep] : svc.deployments()) {
    old_fp[user] = durable::planFingerprint(dep.plan);
  }
  svc.injectDeployFailureAfter(0);  // first migration's new-plan deploy
  const auto rep = svc.defragment(aggressive());
  EXPECT_EQ(rep.dropped, 0) << "restore path must keep the tenant alive";
  ASSERT_GT(rep.rolled_back, 0);
  const auto& rb = rep.migrations.front();
  EXPECT_EQ(rb.outcome, MigrationOutcome::kRolledBack);
  EXPECT_FALSE(rb.error.ok());
  // The rolled-back tenant still runs its old plan; nothing leaked.
  ASSERT_TRUE(svc.deployments().count(rb.user_id));
  EXPECT_EQ(durable::planFingerprint(svc.deployments().at(rb.user_id).plan),
            old_fp.at(rb.user_id));
  const auto audit = svc.verifyDeployments();
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

// --- crash cuts: exactly one of {old, new} -------------------------------

TEST(DefragJournal, CutsAroundMigrateLandOnExactlyOldOrNewPlan) {
  const auto ft = podTree();
  durable::MemJournalSink sink;
  ClickIncService primary(ft.topo);
  primary.attachJournal(&sink);  // journal the whole history from fresh
  fragmentPod(primary, ft);
  const auto rep = primary.defragment(aggressive());
  ASSERT_TRUE(rep.ok) << rep.error.message();
  ASSERT_GT(rep.migrated, 0);

  const auto bytes = sink.readAll();
  const auto scan = durable::scanJournal(bytes);
  ASSERT_TRUE(scan.magic_ok);
  ASSERT_FALSE(scan.torn);
  int exercised = 0;
  for (const auto& rec : scan.records) {
    if (rec.type != durable::RecordType::kMigrate) continue;
    const auto mig = durable::decodeMigrate(rec.payload);
    const std::uint64_t new_fp = durable::planFingerprint(mig.plan);
    ++exercised;
    // Crash BEFORE the record: recovery lands on the old plan.
    {
      durable::MemJournalSink cut;
      cut.setBytes(std::vector<std::uint8_t>(
          bytes.begin(),
          bytes.begin() + static_cast<std::ptrdiff_t>(rec.offset)));
      ClickIncService svc(ft.topo);
      const auto r = svc.recover(&cut);
      ASSERT_TRUE(r.ok) << r.error.message();
      ASSERT_TRUE(svc.deployments().count(mig.user));
      EXPECT_EQ(
          durable::planFingerprint(svc.deployments().at(mig.user).plan),
          mig.old_plan_fp);
      EXPECT_TRUE(r.verify.ok()) << r.verify.summary();
    }
    // Crash AFTER the record: replay finishes the swap — the new plan.
    {
      durable::MemJournalSink cut;
      cut.setBytes(std::vector<std::uint8_t>(
          bytes.begin(),
          bytes.begin() + static_cast<std::ptrdiff_t>(rec.end)));
      ClickIncService svc(ft.topo);
      const auto r = svc.recover(&cut);
      ASSERT_TRUE(r.ok) << r.error.message();
      ASSERT_TRUE(svc.deployments().count(mig.user));
      EXPECT_EQ(
          durable::planFingerprint(svc.deployments().at(mig.user).plan),
          new_fp);
      EXPECT_TRUE(r.verify.ok()) << r.verify.summary();
    }
  }
  EXPECT_GT(exercised, 0);
  // Full-journal recovery reproduces the primary bit for bit.
  durable::MemJournalSink full;
  full.setBytes(bytes);
  ClickIncService svc(ft.topo);
  const auto r = svc.recover(&full);
  ASSERT_TRUE(r.ok) << r.error.message();
  EXPECT_EQ(digestOf(svc), digestOf(primary));
}

// --- reactive targeted compaction ----------------------------------------

TEST(ReactiveCompaction, StrandedFailureTriggersBoundedRetry) {
  // Two identical services pushed to the same resource wall; the reactive
  // one may only differ by running a compaction pass before giving up,
  // and any failure it still reports must carry the stranded verdict in
  // its detail (S1).
  for (const bool reactive : {false, true}) {
    const auto ft = podTree();
    ClickIncService svc(ft.topo);
    fragmentPod(svc, ft);
    if (reactive) {
      core::DefragPolicy pol;
      pol.reactive = true;
      pol.options = aggressive();
      svc.setDefragPolicy(pol);
    }
    int failures = 0;
    for (int i = 0; i < 48; ++i) {
      const auto r = svc.submit(
          dqacc(intraPod(ft, 0, static_cast<std::size_t>(i % 2),
                         static_cast<std::size_t>(2 + i % 2)),
                4096));
      if (r.ok) continue;
      ++failures;
      ASSERT_EQ(r.error.code, ErrorCode::kResourceExhausted)
          << r.error.message();
      const bool annotated =
          r.error.detail.find("stranded capacity") != std::string::npos ||
          r.error.detail.find("true exhaustion") != std::string::npos;
      EXPECT_TRUE(annotated) << r.error.detail;
      EXPECT_EQ(r.error.stranded,
                r.error.detail.find("stranded capacity") !=
                    std::string::npos);
      break;
    }
    ASSERT_GT(failures, 0) << "fixture never hit the resource wall";
    const auto audit = svc.verifyDeployments();
    EXPECT_TRUE(audit.ok()) << "reactive=" << reactive << ": "
                            << audit.summary();
  }
}

// --- defragment() racing the async pipeline (S3) -------------------------

TEST(DefragRaces, DefragmentInterleavedWithAsyncSubmitAndRemove) {
  for (const int threads : {1, 2, 8}) {
    const auto ft = podTree();
    ClickIncService svc(ft.topo);
    svc.setConcurrency(threads);
    std::vector<core::SubmissionTicket> tickets;
    std::set<int> removed;
    for (int i = 0; i < 24; ++i) {
      tickets.push_back(svc.submitAsync(
          dqacc(intraPod(ft, static_cast<std::size_t>(i % 4),
                         static_cast<std::size_t>(i % 2),
                         static_cast<std::size_t>(2 + i % 2)),
                64ULL << (i % 3))));
      if (i % 5 == 4) {
        // Concurrent compaction against in-flight submissions: must not
        // corrupt the ledger, lose a claim, or double-claim a device.
        const auto rep = svc.defragment(aggressive());
        EXPECT_EQ(rep.dropped, 0) << "threads=" << threads;
      }
      if (i % 7 == 6) {
        // Resolve an in-flight ticket and remove the tenant mid-storm.
        const auto& r = tickets[tickets.size() / 2].get();
        if (r.ok && removed.insert(r.user_id).second) {
          svc.remove(r.user_id);
        }
      }
    }
    std::set<int> accepted;
    for (auto& t : tickets) {
      const auto& r = t.get();
      if (r.ok) accepted.insert(r.user_id);
    }
    const auto rep = svc.defragment(aggressive());
    EXPECT_EQ(rep.dropped, 0);
    const auto audit = svc.verifyDeployments();
    EXPECT_TRUE(audit.ok()) << "threads=" << threads << ": "
                            << audit.summary();
    // No tenant lost or duplicated: live set == accepted minus removed.
    std::set<int> want;
    for (const int u : accepted) {
      if (removed.count(u) == 0) want.insert(u);
    }
    std::set<int> live;
    for (const auto& [user, dep] : svc.deployments()) {
      (void)dep;
      live.insert(user);
    }
    EXPECT_EQ(live, want) << "threads=" << threads;
  }
}

// --- churn-driver cadence soak -------------------------------------------

TEST(ChurnDefrag, CadenceSoakZeroMigrationLossUnderFaults) {
  const auto ft = podTree();
  core::ClickIncService svc(ft.topo);
  svc.setDomainSharding(true);
  svc.setConcurrency(2);
  scale::ChurnParams cp;
  cp.cycles = 300;
  cp.target_live = 24;
  cp.inflight = 4;
  cp.sample_every = 100;
  cp.audit_every = 100;
  cp.fault_every = 60;
  cp.defrag_every = 50;
  cp.defrag_opts = aggressive();
  cp.defrag_opts.max_migrations = 4;
  scale::ChurnDriver driver(&svc, &ft, cp);
  const auto& m = driver.run();
  EXPECT_GT(m.defrag_passes, 0);
  EXPECT_EQ(m.migration_drops, 0)
      << "a make-before-break migration lost a tenant";
  EXPECT_EQ(m.probe_drops, 0)
      << "migration-attributable packet loss out of " << m.probe_packets
      << " probes";
  EXPECT_EQ(m.verify_violations, 0);
  EXPECT_TRUE(m.final_audit.ok()) << m.final_audit.summary();
  ASSERT_FALSE(m.samples.empty());
  for (const auto& s : m.samples) EXPECT_GE(s.frag_score, 0.0);
  EXPECT_EQ(m.samples.back().migrations, m.migrations);
}

}  // namespace
}  // namespace clickinc
