#include <gtest/gtest.h>

#include "ir/interp.h"
#include "modules/templates.h"
#include "synth/synthesizer.h"
#include "util/strings.h"

namespace clickinc::synth {
namespace {

using clickinc::Rng;
using ir::Interpreter;
using ir::PacketView;
using ir::StateStore;
using ir::Verdict;

std::vector<int> allInstrs(const ir::IrProgram& p) {
  std::vector<int> out;
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    out.push_back(static_cast<int>(i));
  }
  return out;
}

UserSnippet snippetOf(int user, const std::string& name,
                      ir::IrProgram prog) {
  UserSnippet s;
  s.user_id = user;
  s.program_name = name;
  s.instr_idxs = allInstrs(prog);
  s.prog = std::move(prog);
  return s;
}

ir::IrProgram dqacc(const std::string& name) {
  modules::ModuleLibrary lib;
  return lib.compileTemplate("DQAcc", name,
                             {{"CacheDepth", 64}, {"CacheLen", 2}});
}

// --- parse tree ---

TEST(ParseTree, AddAndCount) {
  ParseTree t;
  t.addPath({"ethernet", "ipv4", "udp"}, kOperatorOwner);
  EXPECT_EQ(t.nodeCount(), 3);
  t.addPath({"ethernet", "ipv4", "udp", "inc"}, 1);
  EXPECT_EQ(t.nodeCount(), 4);
  // Shared prefix is annotated, not duplicated.
  t.addPath({"ethernet", "ipv4", "udp", "inc", "kvs0"}, 1);
  EXPECT_EQ(t.nodeCount(), 5);
  EXPECT_TRUE(t.containsHeader("kvs0"));
}

TEST(ParseTree, RemoveOwnerKeepsSharedNodes) {
  ParseTree t;
  t.addPath({"ethernet", "ipv4", "udp"}, kOperatorOwner);
  t.addPath({"ethernet", "ipv4", "udp", "inc", "kvs0"}, 1);
  t.addPath({"ethernet", "ipv4", "udp", "inc", "agg0"}, 2);
  EXPECT_EQ(t.nodeCount(), 6);
  const int removed = t.removeOwner(1);
  EXPECT_EQ(removed, 1);  // only kvs0 died; "inc" is still owned by 2
  EXPECT_FALSE(t.containsHeader("kvs0"));
  EXPECT_TRUE(t.containsHeader("agg0"));
  EXPECT_TRUE(t.containsHeader("udp"));
  t.removeOwner(2);
  EXPECT_FALSE(t.containsHeader("inc"));
  EXPECT_TRUE(t.containsHeader("udp"));  // operator's network headers stay
}

TEST(ParseTree, MergeFromAnnotates) {
  ParseTree a;
  a.addPath({"ethernet", "ipv4"}, kOperatorOwner);
  ParseTree b;
  b.addPath({"ethernet", "ipv4", "udp", "inc"}, 7);
  a.mergeFrom(b, 7);
  EXPECT_EQ(a.nodeCount(), 4);
  const auto headers = a.headersOf(7);
  EXPECT_EQ(headers.size(), 4u);  // user 7 annotated along the whole chain
}

// --- isolation ---

TEST(Isolation, VariablesRenamedStatesKept) {
  const auto prog = dqacc("dq0");
  const auto iso = isolateVariables(prog, 3);
  for (const auto& ins : iso.instrs) {
    if (ins.dest.isVar()) {
      EXPECT_TRUE(startsWith(ins.dest.name, "u3_")) << ins.dest.name;
    }
    EXPECT_TRUE(ins.ownedBy(3));
  }
  // State names keep the frontend prefix (dq0_...), not the user prefix.
  for (const auto& st : iso.states) {
    EXPECT_TRUE(startsWith(st.name, "dq0_"));
  }
}

// --- device program synthesis ---

class SynthFixture : public ::testing::Test {
 protected:
  SynthFixture()
      : base_(makeDefaultBase()),
        model_(device::makeTofino()),
        dev_(&base_, &model_) {}

  BaseProgram base_;
  device::DeviceModel model_;
  DeviceProgram dev_;
};

TEST_F(SynthFixture, MergedContainsBaseHeadAndTail) {
  const auto& exe = dev_.executable();
  // TTL validation from head, LPM forward from tail.
  bool has_lpm = false, has_ttl_check = false;
  for (const auto& ins : exe.instrs) {
    if (ins.op == ir::Opcode::kLpmLookup) has_lpm = true;
    if (ins.op == ir::Opcode::kCmpNe && !ins.srcs.empty() &&
        ins.srcs[0].name == "hdr.ipv4_ttl") {
      has_ttl_check = true;
    }
  }
  EXPECT_TRUE(has_lpm);
  EXPECT_TRUE(has_ttl_check);
}

TEST_F(SynthFixture, SnippetSitsBetweenHeadAndTail) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  const auto& exe = dev_.executable();
  std::size_t first_user = exe.instrs.size(), tail_pos = 0;
  for (std::size_t i = 0; i < exe.instrs.size(); ++i) {
    if (exe.instrs[i].ownedBy(1) && first_user == exe.instrs.size()) {
      first_user = i;
    }
    if (exe.instrs[i].op == ir::Opcode::kLpmLookup) tail_pos = i;
  }
  EXPECT_GT(first_user, 0u);           // head comes first
  EXPECT_LT(first_user, tail_pos);     // user before tail forwarding
}

TEST_F(SynthFixture, UserTrafficFilterIsolation) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  StateStore store;
  Rng rng(5);
  Interpreter interp(&store, &rng);
  const auto& exe = dev_.executable();

  // Packet of user 1 is processed by the DQAcc logic (duplicate dropped).
  auto send = [&](int uid, std::uint64_t value) {
    PacketView pkt;
    pkt.setField("hdr._uid", static_cast<std::uint64_t>(uid));
    pkt.setField("hdr.eth_type", 0x0800);
    pkt.setField("hdr.ipv4_ttl", 8);
    pkt.setField("hdr.value", value);
    interp.runAll(exe, pkt);
    return pkt;
  };
  EXPECT_EQ(send(1, 99).verdict, Verdict::kForward);
  EXPECT_EQ(send(1, 99).verdict, Verdict::kDrop);  // duplicate for user 1
  // Same value from another user: untouched by user 1's program (the
  // rolling cache write was guarded), so the packet just forwards.
  EXPECT_EQ(send(2, 99).verdict, Verdict::kForward);
}

TEST_F(SynthFixture, TwoInstancesDoNotShareState) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  StateStore store;
  Rng rng(5);
  Interpreter interp(&store, &rng);
  const auto& exe = dev_.executable();
  auto send = [&](int uid, std::uint64_t value) {
    PacketView pkt;
    pkt.setField("hdr._uid", static_cast<std::uint64_t>(uid));
    pkt.setField("hdr.eth_type", 0x0800);
    pkt.setField("hdr.ipv4_ttl", 8);
    pkt.setField("hdr.value", value);
    interp.runAll(exe, pkt);
    return pkt;
  };
  EXPECT_EQ(send(1, 42).verdict, Verdict::kForward);
  // User 2 sees the same value as fresh: no cross-instance cache sharing.
  EXPECT_EQ(send(2, 42).verdict, Verdict::kForward);
  EXPECT_EQ(send(2, 42).verdict, Verdict::kDrop);
  EXPECT_EQ(send(1, 42).verdict, Verdict::kDrop);
}

TEST_F(SynthFixture, BaseDropStillAppliesToUserTraffic) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  StateStore store;
  Rng rng(5);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  pkt.setField("hdr._uid", 1);
  pkt.setField("hdr.eth_type", 0x0800);
  pkt.setField("hdr.ipv4_ttl", 0);  // expired: base head drops
  pkt.setField("hdr.value", 1);
  interp.runAll(dev_.executable(), pkt);
  EXPECT_EQ(pkt.verdict, Verdict::kDrop);
}

TEST_F(SynthFixture, IncrementalAddReportsAffectedUsers) {
  auto s1 = dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  EXPECT_TRUE(s1.executable_changed);
  EXPECT_TRUE(s1.other_users_affected.empty());
  auto s2 = dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  ASSERT_EQ(s2.other_users_affected.size(), 1u);
  EXPECT_EQ(s2.other_users_affected[0], 1);
}

TEST_F(SynthFixture, LazyRemovalDisablesWithoutStripping) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  const auto instrs_before = dev_.executable().instrs.size();
  auto stats = dev_.removeUser(1, /*lazy=*/true);
  EXPECT_EQ(stats.instrs_removed, 0);  // nothing stripped yet
  EXPECT_FALSE(dev_.hostsUser(1));
  // The merged executable no longer contains user 1's logic.
  EXPECT_LT(dev_.executable().instrs.size(), instrs_before);
  // Next add enforces the strip.
  auto s2 = dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  EXPECT_GT(s2.instrs_removed, 0);
}

TEST_F(SynthFixture, EagerRemovalStripsImmediately) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  auto stats = dev_.removeUser(1, /*lazy=*/false);
  EXPECT_GT(stats.instrs_removed, 0);
  ASSERT_EQ(stats.other_users_affected.size(), 1u);
  EXPECT_EQ(stats.other_users_affected[0], 2);
  EXPECT_FALSE(dev_.hostsUser(1));
  EXPECT_TRUE(dev_.hostsUser(2));
  // User 2 still works after the strip.
  StateStore store;
  Rng rng(5);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  pkt.setField("hdr._uid", 2);
  pkt.setField("hdr.eth_type", 0x0800);
  pkt.setField("hdr.ipv4_ttl", 3);
  pkt.setField("hdr.value", 5);
  interp.runAll(dev_.executable(), pkt);
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST_F(SynthFixture, ParserMergesAndStrips) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  EXPECT_TRUE(dev_.parser().containsHeader("dq0"));
  EXPECT_TRUE(dev_.parser().containsHeader("dq1"));
  EXPECT_TRUE(dev_.parser().containsHeader("inc"));
  dev_.removeUser(1, /*lazy=*/false);
  EXPECT_FALSE(dev_.parser().containsHeader("dq0"));
  EXPECT_TRUE(dev_.parser().containsHeader("inc"));  // shared with user 2
}

TEST_F(SynthFixture, MergedExecutableVerifies) {
  dev_.addSnippet(snippetOf(1, "dq0", dqacc("dq0")));
  dev_.addSnippet(snippetOf(2, "dq1", dqacc("dq1")));
  EXPECT_NO_THROW(dev_.executable().verify());
}

// Distributed-equivalence property: splitting a program in half across two
// synthesized devices yields the same packet outcomes as one device.
TEST(DistributedEquivalence, TwoDeviceSplitMatchesSingle) {
  modules::ModuleLibrary lib;
  auto prog = lib.compileTemplate("DQAcc", "dq",
                                  {{"CacheDepth", 64}, {"CacheLen", 2}});
  const int n = static_cast<int>(prog.instrs.size());
  // Find a cut that does not split any state-sharing group: use the block
  // DAG boundary — here simply cut before the first drop/fwd action.
  int cut = n / 2;
  for (int i = 0; i < n; ++i) {
    if (prog.instrs[static_cast<std::size_t>(i)].state_id >= 0) {
      cut = i;  // cut before the first stateful op
      break;
    }
  }
  std::vector<int> first, second;
  for (int i = 0; i < cut; ++i) first.push_back(i);
  for (int i = cut; i < n; ++i) second.push_back(i);

  Rng rng(9);
  StateStore single_store, store_a, store_b;
  Interpreter single(&single_store, &rng);
  Interpreter dev_a(&store_a, &rng);
  Interpreter dev_b(&store_b, &rng);

  for (int round = 0; round < 200; ++round) {
    const std::uint64_t value = (round * 7) % 23;
    PacketView p1;
    p1.setField("hdr.value", value);
    single.runAll(prog, p1);

    PacketView p2;
    p2.setField("hdr.value", value);
    dev_a.run(prog, std::span<const ir::Instruction>(
                         prog.instrs.data(), static_cast<std::size_t>(cut)),
              p2);
    dev_b.run(prog,
              std::span<const ir::Instruction>(
                  prog.instrs.data() + cut,
                  static_cast<std::size_t>(n - cut)),
              p2);
    ASSERT_EQ(p1.verdict, p2.verdict) << "round " << round;
  }
}

}  // namespace
}  // namespace clickinc::synth
