#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/bits.h"
#include "util/crc.h"
#include "util/strings.h"
#include "util/texttable.h"
#include "util/thread_pool.h"

namespace clickinc {
namespace {

TEST(Bits, BitsFor) {
  EXPECT_EQ(bitsFor(0), 1);
  EXPECT_EQ(bitsFor(1), 1);
  EXPECT_EQ(bitsFor(2), 1);
  EXPECT_EQ(bitsFor(3), 2);
  EXPECT_EQ(bitsFor(4), 2);
  EXPECT_EQ(bitsFor(5), 3);
  EXPECT_EQ(bitsFor(256), 8);
  EXPECT_EQ(bitsFor(257), 9);
  EXPECT_EQ(bitsFor(65536), 16);
}

TEST(Bits, RoundUpPow2) {
  EXPECT_EQ(roundUpPow2(0), 1u);
  EXPECT_EQ(roundUpPow2(1), 1u);
  EXPECT_EQ(roundUpPow2(2), 2u);
  EXPECT_EQ(roundUpPow2(3), 4u);
  EXPECT_EQ(roundUpPow2(1000), 1024u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 3), 4u);
  EXPECT_EQ(ceilDiv(9, 3), 3u);
  EXPECT_EQ(ceilDiv(1, 128), 1u);
}

TEST(Bits, LowMaskAndTrunc) {
  EXPECT_EQ(lowMask(0), 0u);
  EXPECT_EQ(lowMask(1), 1u);
  EXPECT_EQ(lowMask(16), 0xFFFFu);
  EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
  EXPECT_EQ(truncToWidth(0x1FF, 8), 0xFFu);
  EXPECT_EQ(truncToWidth(0x100, 8), 0u);
}

TEST(Crc, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") == 0x29B1.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(std::span<const std::uint8_t>(data, 9)), 0x29B1);
}

TEST(Crc, Crc32KnownVector) {
  // CRC-32/IEEE("123456789") == 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data, 9)), 0xCBF43926u);
}

TEST(Crc, KeyOverloadsDeterministic) {
  EXPECT_EQ(crc16(std::uint64_t{42}), crc16(std::uint64_t{42}));
  EXPECT_EQ(crc32(std::uint64_t{42}), crc32(std::uint64_t{42}));
  EXPECT_NE(crc32(std::uint64_t{42}), crc32(std::uint64_t{43}));
}

TEST(Crc, Mix64Bijective) {
  // Distinct inputs keep distinct outputs on a sample.
  std::uint64_t prev = mix64(0);
  for (std::uint64_t i = 1; i < 1000; ++i) {
    EXPECT_NE(mix64(i), prev);
    prev = mix64(i);
  }
}

TEST(Rng, DeterministicStreams) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(Rng, ZipfBoundedAndSkewed) {
  Rng rng(3);
  const std::uint64_t n = 1000;
  std::uint64_t low_half = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = rng.nextZipf(n, 1.1);
    ASSERT_LT(v, n);
    if (v < n / 10) ++low_half;
  }
  // Heavily skewed toward small ranks: >50% of mass in the lowest decile.
  EXPECT_GT(low_half, static_cast<std::uint64_t>(samples / 2));
}

TEST(Strings, SplitJoinTrim) {
  auto parts = splitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(joinStrings(parts, "/"), "a/b//c");
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(startsWith("hdr.key", "hdr."));
  EXPECT_FALSE(startsWith("hd", "hdr."));
  EXPECT_TRUE(endsWith("prog.p4", ".p4"));
  EXPECT_TRUE(containsString("abcdef", "cde"));
  EXPECT_EQ(toLower("KVS"), "kvs");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmtDouble(1.5), "1.5");
  EXPECT_EQ(fmtDouble(2.0), "2");
  EXPECT_EQ(fmtDouble(0.125, 3), "0.125");
  EXPECT_EQ(fmtDouble(1.0 / 3.0, 2), "0.33");
}

TEST(Strings, Cat) {
  EXPECT_EQ(cat("x=", 3, ", y=", 4.5), "x=3, y=4.5");
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline: no synchronization
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // The placement DP nests: subtree tasks fan out their node's segment
  // fills on the same pool. Every (outer, inner) pair must run once.
  util::ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallelFor(kOuter, [&](std::size_t o) {
    pool.parallelFor(kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    EXPECT_EQ(hits[k].load(), 1) << k;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAfterAllIndicesRun) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallelFor(64,
                                [&](std::size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 7) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // the failure does not cancel the rest
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), util::ThreadPool::hardwareConcurrency());
  EXPECT_GE(pool.threadCount(), 1);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRule();
  t.addRow({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

}  // namespace
}  // namespace clickinc
