// The plan verifier and its differential fuzz harness: real pipeline
// states verify clean (no false positives) across 200 seeded scenarios
// with failover churn, every mutation-injected corruption is detected (no
// false negatives), and the commit-stage gate turns a corrupted ledger
// into a structured kVerification failure with full rollback.
#include <gtest/gtest.h>

#include "core/service.h"
#include "place/intradevice.h"
#include "topo/topology.h"
#include "verify/fuzz.h"
#include "verify/mutate.h"
#include "verify/verifier.h"

namespace clickinc::verify {
namespace {

topo::TrafficSpec trafficFor(const core::ClickIncService& svc,
                             const std::vector<std::string>& srcs,
                             const std::string& dst) {
  topo::TrafficSpec spec;
  for (const auto& s : srcs) {
    spec.sources.push_back({svc.topology().findNode(s), 10.0});
  }
  spec.dst_host = svc.topology().findNode(dst);
  return spec;
}

core::SubmitRequest kvsRequest(const core::ClickIncService& svc) {
  return core::SubmitRequest::fromTemplate(
      "KVS", {{"CacheSize", 256}, {"ValDim", 4}, {"TH", 32}},
      trafficFor(svc, {"pod0a", "pod0b"}, "pod2b"));
}

// --- the headline: 200 seeded differential-fuzz iterations --------------

TEST(VerifyFuzz, TwoHundredSeedsCleanAndEveryMutationClassDetected) {
  long fired_by[kNumMutations] = {};
  long checkpoints = 0, deployed = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FuzzOutcome out = fuzzOnce(seed);
    ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.failure;
    checkpoints += out.checkpoints;
    deployed += out.tenants_deployed;
    for (int m = 0; m < kNumMutations; ++m) fired_by[m] += out.fired_by[m];
  }
  // The scenarios must be substantive: hundreds of clean audits over
  // hundreds of deployed tenants, and every corruption class detected
  // many times — not once by luck.
  EXPECT_GT(checkpoints, 500);
  EXPECT_GT(deployed, 100);
  for (int m = 0; m < kNumMutations; ++m) {
    EXPECT_GE(fired_by[m], 10)
        << toString(static_cast<Mutation>(m)) << " rarely detected";
  }
}

// --- direct invariant checks against a live service ---------------------

TEST(Verifier, CleanServiceVerifiesCleanAndCountsChecks) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  ASSERT_TRUE(svc.submit(kvsRequest(svc)).ok);
  const VerifyReport rep = svc.verifyDeployments();
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks, 0);
  EXPECT_EQ(rep.summary(), "");
}

TEST(Verifier, LedgerCorruptionIsReportedAsOccupancyDrift) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submit(kvsRequest(svc));
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.verify.ok()) << r.verify.summary();

  // Leak one SALU on a plan device behind the ledger's back.
  const auto devs = r.plan.devicesUsed();
  ASSERT_FALSE(devs.empty());
  auto& occ = svc.occupancy().of(devs.front());
  if (!occ.free_stage.empty()) {
    occ.free_stage[0].salus += 1;
  } else {
    occ.free_whole.salus += 1;
  }

  const VerifyReport rep = svc.verifyDeployments();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(Invariant::kOccupancySoundness));
  EXPECT_TRUE(rep.hasCheck("occupancy-drift")) << rep.summary();
  EXPECT_FALSE(rep.summary().empty());
}

TEST(Verifier, CommitGateFailsSubmissionWithKVerificationAndRollsBack) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  ASSERT_TRUE(svc.submit(kvsRequest(svc)).ok);
  ASSERT_EQ(svc.deployments().size(), 1u);

  // Corrupt the free ledger of every programmable device: whatever the
  // next plan touches, its scoped audit sees the drift.
  const auto& nodes = svc.topology().nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].programmable) continue;
    auto& occ = svc.occupancy().of(static_cast<int>(i));
    for (auto& stage : occ.free_stage) stage.salus += 1;
    if (occ.free_stage.empty()) occ.free_whole.salus += 1;
  }

  const auto r = svc.submit(kvsRequest(svc));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, core::ErrorCode::kVerification);
  EXPECT_EQ(r.error.stage, core::Stage::kCommit);
  EXPECT_FALSE(r.verify.ok());
  EXPECT_FALSE(r.error.detail.empty());
  // Rolled back: the failed tenant is not registered and its claims were
  // returned (the pre-existing corruption is still there, nothing more).
  EXPECT_EQ(svc.deployments().size(), 1u);

  // With the gate off, the same corrupted ledger no longer blocks
  // submissions (the drift predates the tenant; its own plan is sound).
  svc.setVerifyPolicy({.at_commit = false, .at_failover = false});
  const auto r2 = svc.submit(kvsRequest(svc));
  EXPECT_TRUE(r2.ok) << r2.error.message();
  EXPECT_EQ(r2.verify.checks, 0);
}

TEST(Verifier, FailoverReportCarriesACleanFullAudit) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submit(kvsRequest(svc));
  ASSERT_TRUE(r.ok);
  const auto devs = r.plan.devicesUsed();
  ASSERT_FALSE(devs.empty());

  const auto report = svc.failNode(devs.front());
  EXPECT_TRUE(report.verify.ok()) << report.verify.summary();
  EXPECT_GT(report.verify.checks, 0);

  const auto heal = svc.healNode(devs.front());
  EXPECT_TRUE(heal.verify.ok()) << heal.verify.summary();
}

// --- mutation injectors, deterministically -------------------------------

class MutationInjectors : public ::testing::Test {
 protected:
  void SetUp() override {
    svc_ = std::make_unique<core::ClickIncService>(
        topo::Topology::paperEmulation());
    // Two KVS tenants sharing the pod0 -> pod2 path (state on shared
    // devices), plus an MLAgg with replicated client-side segments.
    ASSERT_TRUE(svc_->submit(kvsRequest(*svc_)).ok);
    ASSERT_TRUE(svc_->submit(kvsRequest(*svc_)).ok);
    ASSERT_TRUE(svc_
                    ->submit(core::SubmitRequest::fromTemplate(
                        "MLAgg",
                        {{"NumAgg", 256},
                         {"Dim", 8},
                         {"NumWorker", 2},
                         {"IsConvert", 0}},
                        trafficFor(*svc_, {"pod0a", "pod1a"}, "pod2b")))
                    .ok);
    snap_ = std::make_unique<Snapshot>(svc_->verifySnapshot());
    ASSERT_TRUE(snap_->verify().ok());
  }

  std::unique_ptr<core::ClickIncService> svc_;
  std::unique_ptr<Snapshot> snap_;
};

TEST_F(MutationInjectors, EachClassFiresItsTargetInvariantOnly) {
  for (int mi = 0; mi < kNumMutations; ++mi) {
    const auto m = static_cast<Mutation>(mi);
    Snapshot mutated = *snap_;
    const auto desc = injectMutation(&mutated, m, /*seed=*/7);
    ASSERT_TRUE(desc.has_value()) << toString(m) << " found no site";
    const VerifyReport rep = mutated.verify();
    EXPECT_TRUE(rep.has(targetInvariant(m)))
        << toString(m) << " (" << *desc << "): " << rep.summary();
  }
  // The unmutated snapshot is untouched by the injector runs above.
  EXPECT_TRUE(snap_->verify().ok());
}

TEST_F(MutationInjectors, PredClobberReportsTheNamedCheck) {
  Snapshot mutated = *snap_;
  const auto desc = injectMutation(&mutated, Mutation::kPredClobber, 7);
  ASSERT_TRUE(desc.has_value());
  const VerifyReport rep = mutated.verify();
  EXPECT_TRUE(rep.hasCheck("pred-clobber")) << rep.summary();
}

TEST_F(MutationInjectors, SlotCollisionReportsBothDeviceAndUsers) {
  Snapshot mutated = *snap_;
  const auto desc = injectMutation(&mutated, Mutation::kSlotCollision, 7);
  ASSERT_TRUE(desc.has_value());
  const VerifyReport rep = mutated.verify();
  ASSERT_TRUE(rep.hasCheck("slot-collision")) << rep.summary();
  for (const auto& v : rep.violations) {
    if (v.check != "slot-collision") continue;
    EXPECT_GE(v.device, 0);
    EXPECT_GE(v.user, 0);
    EXPECT_NE(v.detail.find("also deployed by user"), std::string::npos);
  }
}

}  // namespace
}  // namespace clickinc::verify
