#include <gtest/gtest.h>

#include "device/demand.h"
#include "device/model.h"
#include "device/validate.h"
#include "modules/templates.h"

namespace clickinc::device {
namespace {

using ir::InstrClass;
using ir::Opcode;

TEST(Model, TofinoCapabilityMask) {
  const auto d = makeTofino();
  EXPECT_TRUE(d.supportsClass(InstrClass::kBIN));
  EXPECT_TRUE(d.supportsClass(InstrClass::kBSO));
  EXPECT_TRUE(d.supportsClass(InstrClass::kBEM));
  EXPECT_TRUE(d.supportsClass(InstrClass::kBNEM));
  EXPECT_TRUE(d.supportsClass(InstrClass::kBAF));
  // Eq. 9 exclusions.
  EXPECT_FALSE(d.supportsClass(InstrClass::kBIC));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBCA));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBDM));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBSEM));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBSNEM));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBCF));
}

TEST(Model, Trident4SupportsDirectMatchNotCrypto) {
  const auto d = makeTrident4();
  EXPECT_TRUE(d.supportsClass(InstrClass::kBDM));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBIC));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBCF));
}

TEST(Model, NfpSupportsIntegerMulNotFloatNorMirror) {
  const auto d = makeNfp();
  EXPECT_TRUE(d.supportsClass(InstrClass::kBIC));
  EXPECT_TRUE(d.supportsClass(InstrClass::kBSEM));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBCA));
  EXPECT_FALSE(d.supportsClass(InstrClass::kBAPF));
}

TEST(Model, FpgaSupportsEverything) {
  const auto d = makeFpga();
  for (int i = 0; i < ir::kNumInstrClasses; ++i) {
    EXPECT_TRUE(d.supportsClass(static_cast<InstrClass>(i)));
  }
}

TEST(Model, OpcodeRefinements) {
  EXPECT_TRUE(makeFpga().supportsOpcode(Opcode::kAesEnc));
  EXPECT_FALSE(makeNfp().supportsOpcode(Opcode::kAesEnc));
  EXPECT_TRUE(makeNfp().supportsOpcode(Opcode::kEcsEnc));
  EXPECT_FALSE(makeFpga().supportsOpcode(Opcode::kEcsEnc));
  EXPECT_TRUE(makeTofino().supportsOpcode(Opcode::kMulticast));
  EXPECT_FALSE(makeNfp().supportsOpcode(Opcode::kMulticast));
}

TEST(Model, CapacityOrdering) {
  // Tofino2 > Tofino in memory; FPGA has the largest RAM complement.
  EXPECT_GT(makeTofino2().totalMemoryBits(), makeTofino().totalMemoryBits());
  EXPECT_GT(makeNfp().totalMemoryBits(), makeTofino().totalMemoryBits());
}

TEST(Demand, InstrDemandByClass) {
  ir::Instruction add(Opcode::kAdd, ir::Operand::var("x", 32),
                      {ir::Operand::constant(1, 32),
                       ir::Operand::constant(2, 32)});
  EXPECT_EQ(instrDemand(add).alus, 1);
  EXPECT_EQ(instrDemand(add).salus, 0);

  ir::Instruction reg(Opcode::kRegAdd, ir::Operand::var("c", 32),
                      {ir::Operand::constant(0, 8),
                       ir::Operand::constant(1, 32)},
                      0);
  EXPECT_EQ(instrDemand(reg).salus, 1);

  ir::Instruction hash(Opcode::kHashCrc16, ir::Operand::var("h", 16),
                       {ir::Operand::constant(1, 32)});
  EXPECT_EQ(instrDemand(hash).hash_units, 1);

  ir::Instruction guarded = add;
  guarded.pred = ir::Operand::var("p", 1);
  EXPECT_EQ(instrDemand(guarded).gateways, 1);
}

TEST(Demand, StateCountedOncePerSet) {
  ir::IrProgram p;
  ir::StateObject s;
  s.name = "ctr";
  s.kind = ir::StateKind::kRegister;
  s.depth = 1024;
  s.value_width = 32;
  const int sid = p.addState(s);
  for (int i = 0; i < 3; ++i) {
    p.instrs.push_back(ir::Instruction(
        Opcode::kRegAdd, ir::Operand::var(std::string("c") + char('0' + i), 32),
        {ir::Operand::constant(0, 8), ir::Operand::constant(1, 32)}, sid));
  }
  const auto d = demandOfInstrs(p, {0, 1, 2});
  EXPECT_EQ(d.salus, 3);
  EXPECT_EQ(d.sram_bits, 1024u * 32u);  // once, not three times
}

TEST(Demand, ExactTableHasUtilizationSlack) {
  ir::StateObject s;
  s.kind = ir::StateKind::kExactTable;
  s.depth = 900;
  s.key_width = 64;
  s.value_width = 32;
  const auto d = stateDemand(s);
  EXPECT_GT(d.sram_bits, 900u * 96u);  // > raw storage
}

TEST(Demand, TernaryUsesTcam) {
  ir::StateObject s;
  s.kind = ir::StateKind::kTernaryTable;
  s.depth = 100;
  s.key_width = 32;
  s.value_width = 16;
  const auto d = stateDemand(s);
  EXPECT_EQ(d.tcam_bits, 3200u);
  EXPECT_EQ(d.sram_bits, 1600u);
}

// --- validator ---

class ValidateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_.addField("hdr.k", 32);
    ir::StateObject s;
    s.name = "ctr";
    s.kind = ir::StateKind::kRegister;
    s.depth = 256;
    sid_ = prog_.addState(s);
    // 0: h = crc16(hdr.k); 1: c = reg_add(h, 1); 2: big = c > 10
    ir::Instruction h(Opcode::kHashCrc16, ir::Operand::var("h", 16),
                      {ir::Operand::field("hdr.k", 32)});
    ir::Instruction c(Opcode::kRegAdd, ir::Operand::var("c", 32),
                      {ir::Operand::var("h", 16),
                       ir::Operand::constant(1, 32)},
                      sid_);
    ir::Instruction b(Opcode::kCmpGt, ir::Operand::var("big", 1),
                      {ir::Operand::var("c", 32),
                       ir::Operand::constant(10, 32)});
    prog_.instrs = {h, c, b};
  }

  ir::IrProgram prog_;
  int sid_ = -1;
};

TEST_F(ValidateFixture, AcceptsOrderedStages) {
  const auto tofino = makeTofino();
  EXPECT_EQ(validatePipelinePlacement(tofino, prog_, {0, 1, 2}, {0, 1, 2}),
            "");
}

TEST_F(ValidateFixture, RejectsDependencyInversion) {
  const auto tofino = makeTofino();
  const auto err =
      validatePipelinePlacement(tofino, prog_, {0, 1, 2}, {2, 1, 0});
  EXPECT_NE(err, "");
}

TEST_F(ValidateFixture, RejectsSameStageDependency) {
  const auto tofino = makeTofino();
  const auto err =
      validatePipelinePlacement(tofino, prog_, {0, 1, 2}, {0, 0, 1});
  EXPECT_NE(err, "");
}

TEST_F(ValidateFixture, RejectsOutOfRangeStage) {
  const auto tofino = makeTofino();
  const auto err =
      validatePipelinePlacement(tofino, prog_, {0, 1, 2}, {0, 1, 99});
  EXPECT_NE(err, "");
}

TEST_F(ValidateFixture, RejectsUnsupportedClass) {
  const auto tofino = makeTofino();
  ir::IrProgram p;
  p.instrs.push_back(ir::Instruction(Opcode::kMul, ir::Operand::var("m", 32),
                                     {ir::Operand::constant(2, 32),
                                      ir::Operand::constant(3, 32)}));
  const auto err = validatePipelinePlacement(tofino, p, {0}, {0});
  EXPECT_NE(err.find("BIC"), std::string::npos);
}

TEST_F(ValidateFixture, RtcValidatesBudget) {
  const auto nfp = makeNfp();
  EXPECT_EQ(validateWholeDevicePlacement(nfp, prog_, {0, 1, 2}), "");
}

TEST_F(ValidateFixture, RtcRejectsFloat) {
  const auto nfp = makeNfp();
  ir::IrProgram p;
  p.instrs.push_back(ir::Instruction(Opcode::kFAdd, ir::Operand::var("f", 32),
                                     {ir::Operand::constant(0, 32),
                                      ir::Operand::constant(0, 32)}));
  EXPECT_NE(validateWholeDevicePlacement(nfp, p, {0}), "");
}

TEST_F(ValidateFixture, SaluPerStageLimit) {
  const auto tofino = makeTofino();  // 4 SALUs per stage
  ir::IrProgram p;
  std::vector<int> idxs, stages;
  for (int i = 0; i < 5; ++i) {
    ir::StateObject s;
    s.name = std::string("r") + char('0' + i);
    s.kind = ir::StateKind::kRegister;
    s.depth = 16;
    const int sid = p.addState(s);
    p.instrs.push_back(ir::Instruction(
        Opcode::kRegAdd, ir::Operand::var(std::string("c") + char('0' + i), 32),
        {ir::Operand::constant(0, 8), ir::Operand::constant(1, 32)}, sid));
    idxs.push_back(i);
    stages.push_back(0);  // all in stage 0: 5 > 4 SALUs
  }
  EXPECT_NE(validatePipelinePlacement(tofino, p, idxs, stages), "");
  // Spreading over two stages is fine.
  stages = {0, 0, 0, 0, 1};
  EXPECT_EQ(validatePipelinePlacement(tofino, p, idxs, stages), "");
}

TEST_F(ValidateFixture, MemoryOverflowDetected) {
  const auto tofino = makeTofino();
  ir::IrProgram p;
  ir::StateObject s;
  s.name = "huge";
  s.kind = ir::StateKind::kRegister;
  s.depth = 100u * 1024 * 1024;  // far beyond one stage's SRAM
  s.value_width = 32;
  const int sid = p.addState(s);
  p.instrs.push_back(ir::Instruction(Opcode::kRegRead,
                                     ir::Operand::var("v", 32),
                                     {ir::Operand::constant(0, 8)}, sid));
  EXPECT_NE(validatePipelinePlacement(tofino, p, {0}, {0}), "");
}

TEST_F(ValidateFixture, PhvBudget) {
  const auto tofino = makeTofino();
  ir::IrProgram p;
  for (int i = 0; i < 10; ++i) {
    p.addField(std::string("hdr.f") + char('a' + i), 32);
  }
  EXPECT_EQ(validatePhv(tofino, p, 64), "");
  ir::IrProgram fat;
  for (int i = 0; i < 100; ++i) {
    fat.addField(std::string("hdr.g") + std::to_string(i), 128);
  }
  EXPECT_NE(validatePhv(tofino, fat, 0), "");
}

TEST(ValidateTemplates, KvsRejectedOnTofinoAcceptedOnNfpAndFpga) {
  // The KVS template uses a data-plane-written exact table (BSEM), which
  // Tofino cannot host but NFP and FPGA can — the heterogeneity motivation
  // of §2.1.
  modules::ModuleLibrary lib;
  const auto prog = lib.compileTemplate(
      "KVS", "kvs", {{"CacheSize", 512}, {"ValDim", 2}, {"TH", 8}});
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  EXPECT_NE(validateWholeDevicePlacement(makeTofino(), prog, all), "");
  EXPECT_EQ(validateWholeDevicePlacement(makeNfp(), prog, all), "");
  EXPECT_EQ(validateWholeDevicePlacement(makeFpga(), prog, all), "");
}

TEST(ValidateTemplates, MlaggIntegerFitsTofinoWholeDevice) {
  modules::ModuleLibrary lib;
  const auto prog = lib.compileTemplate(
      "MLAgg", "agg",
      {{"NumAgg", 256}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}});
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  // Class support holds on Tofino (no float, no BIC after lowering).
  for (int i : all) {
    EXPECT_TRUE(makeTofino().supportsOpcode(
        prog.instrs[static_cast<std::size_t>(i)].op))
        << prog.instrs[static_cast<std::size_t>(i)].toString();
  }
}

}  // namespace
}  // namespace clickinc::device
