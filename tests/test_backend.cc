#include <gtest/gtest.h>

#include "backend/codegen.h"
#include "modules/templates.h"
#include "synth/synthesizer.h"
#include "util/strings.h"

namespace clickinc::backend {
namespace {

ir::IrProgram dqacc() {
  modules::ModuleLibrary lib;
  return lib.compileTemplate("DQAcc", "dq",
                             {{"CacheDepth", 64}, {"CacheLen", 2}});
}

ir::IrProgram mlagg() {
  modules::ModuleLibrary lib;
  return lib.compileTemplate(
      "MLAgg", "agg", {{"NumAgg", 64}, {"Dim", 4}, {"NumWorker", 2}});
}

TEST(Codegen, TargetNames) {
  EXPECT_STREQ(targetName(Target::kP4_16), "P4-16");
  EXPECT_STREQ(targetName(Target::kNpl), "NPL");
  EXPECT_STREQ(targetName(Target::kMicroC), "Micro-C");
  EXPECT_STREQ(targetName(Target::kHlsC), "HLS-C");
}

TEST(Codegen, P4ContainsTnaIdioms) {
  const auto prog = dqacc();
  const auto p4 = generate(Target::kP4_16, prog);
  EXPECT_NE(p4.find("#include <tna.p4>"), std::string::npos);
  EXPECT_NE(p4.find("control Ingress"), std::string::npos);
  // Register arrays become Register externs with RegisterActions.
  EXPECT_NE(p4.find("Register<"), std::string::npos);
  EXPECT_NE(p4.find("RegisterAction<"), std::string::npos);
  // The rolling-cache state objects appear by their isolated names.
  EXPECT_NE(p4.find("dq_cachearr_r0"), std::string::npos);
  EXPECT_NE(p4.find("dq_ptr_t"), std::string::npos);
  // Drop maps to the TNA idiom.
  EXPECT_NE(p4.find("ig_dprsr_md.drop_ctl"), std::string::npos);
}

TEST(Codegen, P4HeaderFieldsFromProgram) {
  const auto prog = dqacc();
  const auto p4 = generate(Target::kP4_16, prog);
  EXPECT_NE(p4.find("header inc_h"), std::string::npos);
  EXPECT_NE(p4.find("bit<32> value;"), std::string::npos);
}

TEST(Codegen, NplUsesTablesAndBuses) {
  const auto prog = dqacc();
  const auto npl = generate(Target::kNpl, prog);
  EXPECT_NE(npl.find("table dq_cachearr_r0"), std::string::npos);
  EXPECT_NE(npl.find("table_type : index"), std::string::npos);
  EXPECT_NE(npl.find("obj_bus.inc."), std::string::npos);
}

TEST(Codegen, MicroCUsesMemoryHierarchy) {
  const auto prog = mlagg();
  const auto microc = generate(Target::kMicroC, prog);
  EXPECT_NE(microc.find("#include <nfp.h>"), std::string::npos);
  EXPECT_NE(microc.find("pif_plugin"), std::string::npos);
  // Small state lands in CLS; the return-code idioms appear.
  EXPECT_NE(microc.find("__cls"), std::string::npos);
  EXPECT_NE(microc.find("PIF_PLUGIN_RETURN_DROP"), std::string::npos);
}

TEST(Codegen, MicroCLargeStateGoesToEmem) {
  modules::ModuleLibrary lib;
  const auto prog = lib.compileTemplate(
      "KVS", "kvs", {{"CacheSize", 200000}, {"ValDim", 2}, {"TH", 8}});
  const auto microc = generate(Target::kMicroC, prog);
  EXPECT_NE(microc.find("__emem"), std::string::npos);
}

TEST(Codegen, HlsUsesPragmasAndRamBinding) {
  const auto prog = mlagg();
  const auto hls = generate(Target::kHlsC, prog);
  EXPECT_NE(hls.find("#pragma HLS PIPELINE II=1"), std::string::npos);
  EXPECT_NE(hls.find("ap_uint<"), std::string::npos);
  EXPECT_NE(hls.find("BIND_STORAGE"), std::string::npos);
}

TEST(Codegen, PredicatesBecomeIfGuards) {
  const auto prog = dqacc();
  const auto microc = generate(Target::kMicroC, prog);
  EXPECT_NE(microc.find("if ("), std::string::npos);
}

TEST(Codegen, LocPositiveAndOrdered) {
  const auto prog = mlagg();
  const int p4 = generatedLoc(Target::kP4_16, prog);
  const int npl = generatedLoc(Target::kNpl, prog);
  const int microc = generatedLoc(Target::kMicroC, prog);
  const int hls = generatedLoc(Target::kHlsC, prog);
  EXPECT_GT(p4, 50);
  EXPECT_GT(npl, 50);
  EXPECT_GT(microc, 50);
  EXPECT_GT(hls, 50);
  // All targets include every instruction, so sizes are the same order.
  EXPECT_LT(p4, microc * 4);
  EXPECT_LT(microc, p4 * 4);
}

TEST(Codegen, ParserTreeEmittedWhenProvided) {
  const auto prog = dqacc();
  synth::ParseTree tree;
  tree.addPath({"ethernet", "ipv4", "udp", "inc"}, 1);
  const auto p4 = generate(Target::kP4_16, prog, &tree);
  EXPECT_NE(p4.find("state parse_ethernet"), std::string::npos);
  EXPECT_NE(p4.find("state parse_inc"), std::string::npos);
  // Without a tree, only the start state exists.
  const auto bare = generate(Target::kP4_16, prog, nullptr);
  EXPECT_EQ(bare.find("state parse_ethernet"), std::string::npos);
}

TEST(Codegen, EveryTemplateGeneratesForEveryTarget) {
  modules::ModuleLibrary lib;
  for (const auto& name : lib.names()) {
    const auto prog = lib.compileTemplate(
        name, "t",
        name == "KVS"
            ? std::map<std::string, std::uint64_t>{{"CacheSize", 64},
                                                   {"ValDim", 2},
                                                   {"TH", 4}}
            : std::map<std::string, std::uint64_t>{});
    for (Target t : {Target::kP4_16, Target::kNpl, Target::kMicroC,
                     Target::kHlsC}) {
      const auto code = generate(t, prog);
      EXPECT_GT(lang::countLoc(code), 20) << name << " on " << targetName(t);
      EXPECT_EQ(code.find("unhandled"), std::string::npos)
          << name << " on " << targetName(t);
    }
  }
}

TEST(Codegen, SynthesizedMultiUserProgramGenerates) {
  // The merged base + two guarded user snippets must survive codegen.
  auto base = synth::makeDefaultBase();
  const auto model = device::makeNfp();
  synth::DeviceProgram dev(&base, &model);
  modules::ModuleLibrary lib;
  for (int u = 1; u <= 2; ++u) {
    synth::UserSnippet s;
    s.user_id = u;
    s.program_name = cat("dq", u);
    s.prog = lib.compileTemplate("DQAcc", cat("dq", u),
                                 {{"CacheDepth", 32}, {"CacheLen", 2}});
    for (std::size_t i = 0; i < s.prog.instrs.size(); ++i) {
      s.instr_idxs.push_back(static_cast<int>(i));
    }
    dev.addSnippet(std::move(s));
  }
  const auto microc =
      generate(Target::kMicroC, dev.executable(), &dev.parser());
  // Both tenants' isolated state appears.
  EXPECT_NE(microc.find("dq1_cachearr_r0"), std::string::npos);
  EXPECT_NE(microc.find("dq2_cachearr_r0"), std::string::npos);
  // Base forwarding table appears once.
  EXPECT_NE(microc.find("base_fwd_tbl"), std::string::npos);
}

}  // namespace
}  // namespace clickinc::backend
