#include <gtest/gtest.h>

#include "ir/interp.h"
#include "modules/autotune.h"
#include "modules/profile.h"
#include "modules/templates.h"
#include "util/error.h"
#include "util/strings.h"

namespace clickinc::modules {
namespace {

using clickinc::Rng;
using ir::Interpreter;
using ir::PacketView;
using ir::StateStore;
using ir::Verdict;

class KvsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_ = lib_.compileTemplate("KVS", "kvs0",
                                 {{"CacheSize", 64}, {"ValDim", 4}, {"TH", 3}});
  }

  PacketView request(std::uint64_t key) {
    PacketView pkt;
    pkt.setField("hdr.op", 1);  // REQUEST
    pkt.setField("hdr.key", key);
    Interpreter interp(&store_, &rng_);
    interp.runAll(prog_, pkt);
    return pkt;
  }

  // Control-plane cache install: key -> slot plus value registers.
  void install(std::uint64_t key, std::uint64_t slot,
               std::vector<std::uint64_t> vals) {
    store_.instantiate(*prog_.findState("kvs0_cache")).insert(key, slot);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      store_.instantiate(*prog_.findState(cat("kvs0_vals_t_r", i)))
          .regWrite(slot, vals[i]);
    }
  }

  ModuleLibrary lib_;
  ir::IrProgram prog_;
  StateStore store_;
  Rng rng_{7};
};

TEST_F(KvsFixture, MissForwardsToServer) {
  auto pkt = request(1234);
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST_F(KvsFixture, HitRepliesWithCachedValue) {
  install(42, 5, {10, 11, 12, 13});
  auto pkt = request(42);
  EXPECT_EQ(pkt.verdict, Verdict::kSendBack);
  EXPECT_EQ(pkt.field("hdr.op"), 2u);  // REPLY
  EXPECT_EQ(pkt.field("hdr.val.0"), 10u);
  EXPECT_EQ(pkt.field("hdr.val.3"), 13u);
}

TEST_F(KvsFixture, HotMissedKeyReportedToCpuOnce) {
  // Drive the same missed key past the heavy-hitter threshold (TH = 3).
  Verdict final = Verdict::kNone;
  int cpu_copies = 0;
  for (int i = 0; i < 6; ++i) {
    auto pkt = request(777);
    final = pkt.verdict;
    // CopyToCpu does not change the forwarding verdict; the heavy hitter
    // is visible through the bloom filter state instead.
  }
  EXPECT_EQ(final, Verdict::kForward);
  // Bloom filter rows now contain the key's bits.
  int set_rows = 0;
  for (int r = 0; r < 3; ++r) {
    auto* bf = store_.find(cat("kvs0_bf_r", r));
    ASSERT_NE(bf, nullptr);
    for (std::uint64_t i = 0; i < bf->spec().depth; ++i) {
      if (bf->regRead(i) != 0) {
        ++set_rows;
        break;
      }
    }
  }
  EXPECT_EQ(set_rows, 3);
  (void)cpu_copies;
}

TEST_F(KvsFixture, UpdateRefreshesValuesAndDrops) {
  install(42, 5, {10, 11, 12, 13});
  PacketView pkt;
  pkt.setField("hdr.op", 3);  // UPDATE
  pkt.setField("hdr.key", 42);
  pkt.setField("hdr.val.0", 99);
  pkt.setField("hdr.val.1", 98);
  pkt.setField("hdr.val.2", 97);
  pkt.setField("hdr.val.3", 96);
  Interpreter interp(&store_, &rng_);
  interp.runAll(prog_, pkt);
  EXPECT_EQ(pkt.verdict, Verdict::kDrop);
  auto read_back = request(42);
  EXPECT_EQ(read_back.field("hdr.val.0"), 99u);
}

class MlaggFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_ = lib_.compileTemplate(
        "MLAgg", "agg0",
        {{"NumAgg", 64}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}});
  }

  PacketView send(std::uint64_t seq, std::uint64_t bitmap,
                  std::vector<std::uint64_t> data, std::uint64_t op = 1) {
    PacketView pkt;
    pkt.setField("hdr.op", op);
    pkt.setField("hdr.seq", seq);
    pkt.setField("hdr.bitmap", bitmap);
    for (std::size_t i = 0; i < data.size(); ++i) {
      pkt.setField(cat("hdr.data.", i), data[i]);
    }
    Interpreter interp(&store_, &rng_);
    interp.runAll(prog_, pkt);
    return pkt;
  }

  ModuleLibrary lib_;
  ir::IrProgram prog_;
  StateStore store_;
  Rng rng_{7};
};

TEST_F(MlaggFixture, FirstWorkerStoredAndDropped) {
  auto pkt = send(100, 0b01, {1, 2, 3, 4});
  EXPECT_EQ(pkt.verdict, Verdict::kDrop);
  // Aggregator slot holds the data.
  auto* data0 = store_.find("agg0_agg_data_t_r0");
  ASSERT_NE(data0, nullptr);
}

TEST_F(MlaggFixture, LastWorkerTriggersBroadcastOfSum) {
  send(100, 0b01, {1, 2, 3, 4});
  auto pkt = send(100, 0b10, {10, 20, 30, 40});
  EXPECT_EQ(pkt.verdict, Verdict::kSendBack);
  EXPECT_EQ(pkt.field("hdr.op"), 2u);  // ACK
  EXPECT_EQ(pkt.field("hdr.data.0"), 11u);
  EXPECT_EQ(pkt.field("hdr.data.3"), 44u);
  EXPECT_EQ(pkt.field("hdr.bitmap"), 0b11u);
}

TEST_F(MlaggFixture, DuplicateWorkerForwarded) {
  send(100, 0b01, {1, 2, 3, 4});
  auto pkt = send(100, 0b01, {1, 2, 3, 4});  // same worker again
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST_F(MlaggFixture, AckFreesAggregatorSlot) {
  send(100, 0b01, {1, 2, 3, 4});
  send(100, 0b10, {1, 2, 3, 4});        // completes, slot freed on reply
  auto pkt = send(100, 0b01, {5, 6, 7, 8});  // fresh round reuses the slot
  EXPECT_EQ(pkt.verdict, Verdict::kDrop);
}

TEST_F(MlaggFixture, OverflowMirrorsAndForwards) {
  send(200, 0b01, {0x7FFFFFFF, 2, 3, 4});
  auto pkt = send(200, 0b10, {0x7FFFFFFF, 2, 3, 4});
  EXPECT_TRUE(pkt.mirrored);
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST(MlaggConvert, FloatConversionAppliedWhenEnabled) {
  ModuleLibrary lib;
  auto prog = lib.compileTemplate(
      "MLAgg", "aggf",
      {{"NumAgg", 16}, {"Dim", 2}, {"NumWorker", 2}, {"IsConvert", 1},
       {"Scale", 256}});
  StateStore store;
  Rng rng(3);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  pkt.setField("hdr.op", 1);
  pkt.setField("hdr.seq", 5);
  pkt.setField("hdr.bitmap", 1);
  const float v = 1.5f;
  pkt.setField("hdr.data.0", std::bit_cast<std::uint32_t>(v));
  pkt.setField("hdr.data.1", 0);
  interp.runAll(prog, pkt);
  // ftoi(1.5, scale 256) = 384 stored in the aggregator.
  auto* data0 = store.find("aggf_agg_data_t_r0");
  ASSERT_NE(data0, nullptr);
  bool found = false;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (data0->regRead(i) == 384) found = true;
  }
  EXPECT_TRUE(found);
}

class DqaccFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_ = lib_.compileTemplate("DQAcc", "dq0",
                                 {{"CacheDepth", 64}, {"CacheLen", 4}});
  }

  Verdict query(std::uint64_t value) {
    PacketView pkt;
    pkt.setField("hdr.value", value);
    Interpreter interp(&store_, &rng_);
    interp.runAll(prog_, pkt);
    return pkt.verdict;
  }

  ModuleLibrary lib_;
  ir::IrProgram prog_;
  StateStore store_;
  Rng rng_{7};
};

TEST_F(DqaccFixture, FirstOccurrenceForwards) {
  EXPECT_EQ(query(12345), Verdict::kForward);
}

TEST_F(DqaccFixture, DuplicateDropped) {
  query(12345);
  EXPECT_EQ(query(12345), Verdict::kDrop);
}

TEST_F(DqaccFixture, DistinctValuesPass) {
  EXPECT_EQ(query(1), Verdict::kForward);
  EXPECT_EQ(query(2), Verdict::kForward);
  EXPECT_EQ(query(3), Verdict::kForward);
  EXPECT_EQ(query(1), Verdict::kDrop);
}

TEST_F(DqaccFixture, RollingReplacementEvictsOldest) {
  // Values hashing to one bucket beyond CacheLen=4 ways evict the oldest;
  // with 64 buckets we just assert the cache keeps functioning under
  // pressure and never wrongly drops a fresh value.
  for (std::uint64_t v = 1000; v < 1400; ++v) {
    EXPECT_EQ(query(v), Verdict::kForward) << v;
  }
}

TEST(SparseMlagg, ZeroBlocksEliminated) {
  ModuleLibrary lib;
  lang::HeaderSpec hdr;
  hdr.add("op", 8);
  hdr.add("seq", 32);
  hdr.add("bitmap", 32);
  hdr.add("overflow", 8);
  hdr.add("data", 32, 8);  // BlockNum=2 x BlockSize=4
  auto prog = lib.compileUser(
      sparseMlaggSource(), "sparse0", hdr,
      {{"BlockNum", 2}, {"BlockSize", 4}, {"NumAgg", 16}, {"Dim", 8},
       {"NumWorker", 2}, {"IsConvert", 0}, {"Scale", 1}, {"DATA", 1},
       {"ACK", 2}, {"CheckOverflow", 1}});
  StateStore store;
  Rng rng(3);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  pkt.setField("hdr.op", 1);
  pkt.setField("hdr.seq", 9);
  pkt.setField("hdr.bitmap", 1);
  pkt.setField("hdr._len", 32);
  // Block 0 dense, block 1 all-zero.
  for (int i = 0; i < 4; ++i) pkt.setField(cat("hdr.data.", i), 5);
  for (int i = 4; i < 8; ++i) pkt.setField(cat("hdr.data.", i), 0);
  interp.runAll(prog, pkt);
  // The sparse block shrank the packet by 4 x 4 bytes.
  EXPECT_EQ(pkt.field("hdr._len"), 32u - 16u);
  // Aggregation still stored the dense data.
  EXPECT_EQ(pkt.verdict, Verdict::kDrop);
}

TEST(Templates, LibraryListsAllThree) {
  ModuleLibrary lib;
  const auto names = lib.names();
  EXPECT_EQ(names.size(), 3u);
  EXPECT_NE(lib.find("KVS"), nullptr);
  EXPECT_NE(lib.find("MLAgg"), nullptr);
  EXPECT_NE(lib.find("DQAcc"), nullptr);
  EXPECT_EQ(lib.find("NoSuch"), nullptr);
}

TEST(Templates, InstancesAreStateIsolated) {
  ModuleLibrary lib;
  auto a = lib.compileTemplate("DQAcc", "dq_a", {{"CacheDepth", 16}});
  auto b = lib.compileTemplate("DQAcc", "dq_b", {{"CacheDepth", 16}});
  for (const auto& sa : a.states) {
    for (const auto& sb : b.states) {
      EXPECT_NE(sa.name, sb.name);
    }
  }
}

// --- profiles ---

TEST(Profile, ParsesPaperStyleKvsProfile) {
  const std::string text = R"({
    "app": "KVS",
    "performance": {
      "objective function": max 0.7 hit + 0.3 acc,
      "content": >= 1000
    },
    "traffic": { "c1": 10 Mpps, "c2": 20 Mpps },
    "packet_format": {
      "network": "ethernet/ipv4/udp",
      "khdr": { "key": "bit_128" },
      "vhdr": { "val": "bit_32 x 16" }
    },
    "params": { "CacheSize": 5000 }
  })";
  const Profile p = parseProfile(text);
  EXPECT_EQ(p.app, "KVS");
  EXPECT_NE(p.objective.find("0.7 hit"), std::string::npos);
  EXPECT_DOUBLE_EQ(p.performance.at("content"), 1000.0);
  EXPECT_DOUBLE_EQ(p.traffic_mpps.at("c1"), 10.0);
  EXPECT_DOUBLE_EQ(p.traffic_mpps.at("c2"), 20.0);
  EXPECT_DOUBLE_EQ(p.totalTrafficMpps(), 30.0);
  EXPECT_EQ(p.network, "ethernet/ipv4/udp");
  const auto* key = p.header.find("key");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->width, 128);
  const auto* val = p.header.find("val");
  ASSERT_NE(val, nullptr);
  EXPECT_EQ(val->width, 32);
  EXPECT_EQ(val->count, 16);
  EXPECT_EQ(p.params.at("CacheSize"), 5000u);
}

TEST(Profile, MalformedProfileRejected) {
  EXPECT_THROW(parseProfile("not json"), ParseError);
  EXPECT_THROW(parseProfile("{ \"app\": \"KVS\" "), ParseError);
}

TEST(Profile, ProfileDrivesTemplateCompilation) {
  const Profile p = parseProfile(
      "{ \"app\": \"DQAcc\", \"params\": { \"CacheDepth\": 128, "
      "\"CacheLen\": 2 } }");
  ModuleLibrary lib;
  auto prog = lib.compileTemplate(p.app, "dq_prof", p.params);
  // CacheLen=2 ways plus the pointer array.
  EXPECT_EQ(prog.states.size(), 3u);
  EXPECT_EQ(prog.states[0].depth, 128u);
}

// --- autotune ---

TEST(Autotune, ZipfHitRatioMonotone) {
  const double h1 = zipfCacheHitRatio(100, 0.99, 100000);
  const double h2 = zipfCacheHitRatio(1000, 0.99, 100000);
  const double h3 = zipfCacheHitRatio(10000, 0.99, 100000);
  EXPECT_LT(h1, h2);
  EXPECT_LT(h2, h3);
  EXPECT_GT(h1, 0.0);
  EXPECT_LE(h3, 1.0);
  EXPECT_DOUBLE_EQ(zipfCacheHitRatio(100000, 0.99, 100000), 1.0);
}

TEST(Autotune, CmsAccuracyImprovesWithWidthAndRows) {
  EXPECT_LT(cmsAccuracy(3, 256, 10000), cmsAccuracy(3, 4096, 10000));
  EXPECT_LT(cmsAccuracy(1, 1024, 10000), cmsAccuracy(4, 1024, 10000));
}

TEST(Autotune, LearnedModelTracksGroundTruth) {
  std::vector<Observation> obs;
  for (std::uint64_t d = 16; d <= 65536; d *= 2) {
    obs.push_back({static_cast<double>(d), zipfCacheHitRatio(d, 1.1, 65536)});
  }
  LearnedPerfModel m;
  m.fit(obs);
  for (const auto& o : obs) {
    EXPECT_NEAR(m.predict(o.x), o.y, 0.15) << "x=" << o.x;
  }
}

TEST(Autotune, TunedDepthMeetsTarget) {
  const std::uint64_t depth = tuneKvsCacheDepth(0.8, 1.1, 65536);
  EXPECT_GE(zipfCacheHitRatio(depth, 1.1, 65536), 0.7);
  EXPECT_LT(depth, 65536u);  // does not just give up and cache everything
}

TEST(Autotune, TunedCmsWidthMeetsTarget) {
  const std::uint64_t width = tuneCmsWidth(0.9, 3, 5000);
  EXPECT_GE(cmsAccuracy(3, width, 5000), 0.85);
}

}  // namespace
}  // namespace clickinc::modules
