#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/interp.h"
#include "ir/program.h"
#include "util/error.h"

namespace clickinc::ir {
namespace {

using clickinc::Rng;

Instruction mk(Opcode op, Operand dest, std::vector<Operand> srcs,
               int state = -1) {
  return Instruction(op, std::move(dest), std::move(srcs), state);
}

TEST(Opcode, EveryOpcodeHasConsistentInfo) {
  for (int i = 0; i <= static_cast<int>(Opcode::kNop); ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto& info = opcodeInfo(op);
    EXPECT_FALSE(info.name.empty());
    EXPECT_GE(info.min_srcs, 0);
    if (info.max_srcs >= 0) {
      EXPECT_LE(info.min_srcs, info.max_srcs);
    }
  }
}

TEST(Opcode, ClassAssignmentsMatchPaperTables) {
  EXPECT_EQ(opcodeClass(Opcode::kAdd), InstrClass::kBIN);
  EXPECT_EQ(opcodeClass(Opcode::kMul), InstrClass::kBIC);
  EXPECT_EQ(opcodeClass(Opcode::kFAdd), InstrClass::kBCA);
  EXPECT_EQ(opcodeClass(Opcode::kRegAdd), InstrClass::kBSO);
  EXPECT_EQ(opcodeClass(Opcode::kEmtLookup), InstrClass::kBEM);
  EXPECT_EQ(opcodeClass(Opcode::kSemtWrite), InstrClass::kBSEM);
  EXPECT_EQ(opcodeClass(Opcode::kTmtLookup), InstrClass::kBNEM);
  EXPECT_EQ(opcodeClass(Opcode::kStmtWrite), InstrClass::kBSNEM);
  EXPECT_EQ(opcodeClass(Opcode::kDmtLookup), InstrClass::kBDM);
  EXPECT_EQ(opcodeClass(Opcode::kDrop), InstrClass::kBBPF);
  EXPECT_EQ(opcodeClass(Opcode::kMirror), InstrClass::kBAPF);
  EXPECT_EQ(opcodeClass(Opcode::kHashCrc16), InstrClass::kBAF);
  EXPECT_EQ(opcodeClass(Opcode::kAesEnc), InstrClass::kBCF);
}

TEST(Program, VerifyAcceptsWellFormed) {
  IrProgram p;
  p.name = "ok";
  p.addField("hdr.x", 32);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t0", 32),
                        {Operand::field("hdr.x", 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("t0", 32), Operand::constant(1, 32)}));
  EXPECT_NO_THROW(p.verify());
}

TEST(Program, VerifyRejectsUseBeforeDef) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("nope", 32), Operand::constant(1, 32)}));
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, VerifyRejectsBadStateRef) {
  IrProgram p;
  p.instrs.push_back(
      mk(Opcode::kRegRead, Operand::var("v", 32), {Operand::constant(0, 16)},
         /*state=*/5));
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, VerifyRejectsWidePredicate) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 8),
                        {Operand::constant(1, 8)}));
  Instruction guarded = mk(Opcode::kAssign, Operand::var("t", 32),
                           {Operand::constant(2, 32)});
  guarded.pred = Operand::var("c", 8);  // must be 1-bit
  p.instrs.push_back(guarded);
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, StateRegistrationAndLookup) {
  IrProgram p;
  StateObject s;
  s.name = "cms0";
  s.kind = StateKind::kRegister;
  s.depth = 1024;
  const int id = p.addState(s);
  EXPECT_EQ(id, 0);
  ASSERT_NE(p.findState("cms0"), nullptr);
  EXPECT_EQ(p.findState("cms0")->id, 0);
  EXPECT_EQ(p.findState("other"), nullptr);
}

TEST(Program, StorageBits) {
  StateObject reg;
  reg.kind = StateKind::kRegister;
  reg.depth = 100;
  reg.value_width = 32;
  EXPECT_EQ(reg.storageBits(), 3200u);

  StateObject tbl;
  tbl.kind = StateKind::kExactTable;
  tbl.depth = 10;
  tbl.key_width = 16;
  tbl.value_width = 48;
  EXPECT_EQ(tbl.storageBits(), 640u);
}

// --- dependency analysis ---

IrProgram chainProgram() {
  // t0 = hdr.a; t1 = t0+1; t2 = t1*2
  IrProgram p;
  p.addField("hdr.a", 32);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t0", 32),
                        {Operand::field("hdr.a", 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("t0", 32), Operand::constant(1, 32)}));
  p.instrs.push_back(mk(Opcode::kMul, Operand::var("t2", 32),
                        {Operand::var("t1", 32), Operand::constant(2, 32)}));
  return p;
}

TEST(Analysis, RawDependencies) {
  const auto p = chainProgram();
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(Analysis, StateSharingIsMutual) {
  IrProgram p;
  StateObject s;
  s.name = "ctr";
  s.kind = StateKind::kRegister;
  s.depth = 16;
  s.stateful = true;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("c0", 32),
                        {Operand::constant(0, 8), Operand::constant(1, 32)},
                        sid));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("x", 32),
                        {Operand::constant(7, 32)}));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("c1", 32),
                        {Operand::constant(3, 8)}, sid));
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(2, 0));  // mutual
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(Analysis, StatelessTableNotMutual) {
  IrProgram p;
  StateObject s;
  s.name = "fwdtbl";
  s.kind = StateKind::kExactTable;
  s.stateful = false;  // control-plane populated
  s.depth = 16;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kEmtLookup, Operand::var("a", 32),
                        {Operand::constant(1, 32)}, sid));
  p.instrs.push_back(mk(Opcode::kEmtLookup, Operand::var("b", 32),
                        {Operand::constant(2, 32)}, sid));
  const auto g = buildDepGraph(p);
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(Analysis, WawAndWarOrdering) {
  IrProgram p;
  p.addField("hdr.v", 32);
  // write hdr.v; read hdr.v; write hdr.v again.
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.v", 32),
                        {Operand::constant(1, 32)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("r", 32),
                        {Operand::field("hdr.v", 32)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.v", 32),
                        {Operand::constant(2, 32)}));
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 1));  // RAW
  EXPECT_TRUE(g.hasEdge(1, 2));  // WAR
  EXPECT_TRUE(g.hasEdge(0, 2));  // WAW
}

TEST(Analysis, SccGroupsMutualStateUsers) {
  IrProgram p;
  StateObject s;
  s.name = "agg";
  s.kind = StateKind::kRegister;
  s.depth = 8;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("a", 32),
                        {Operand::constant(0, 8), Operand::constant(1, 32)},
                        sid));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("lone", 32),
                        {Operand::constant(5, 32)}));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("b", 32),
                        {Operand::constant(1, 8)}, sid));
  const auto g = buildDepGraph(p);
  const auto comps = stronglyConnectedComponents(g);
  // Expect 2 components: {0,2} (state-sharing) and {1}.
  ASSERT_EQ(comps.size(), 2u);
  bool found_pair = false, found_single = false;
  for (const auto& c : comps) {
    if (c == std::vector<int>{0, 2}) found_pair = true;
    if (c == std::vector<int>{1}) found_single = true;
  }
  EXPECT_TRUE(found_pair);
  EXPECT_TRUE(found_single);
}

TEST(Analysis, SccTopologicalOrder) {
  const auto p = chainProgram();
  const auto g = buildDepGraph(p);
  const auto comps = stronglyConnectedComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], std::vector<int>{0});
  EXPECT_EQ(comps[1], std::vector<int>{1});
  EXPECT_EQ(comps[2], std::vector<int>{2});
}

TEST(Analysis, ParamBitsAcrossCut) {
  const auto p = chainProgram();
  // Cut between instr 1 and 2: t1 (32b) crosses. t0 does not (unused after).
  EXPECT_EQ(paramBitsAcrossCut(p, {0, 1}, {2}), 32);
  // Cut between 0 and 1: only t0 crosses.
  EXPECT_EQ(paramBitsAcrossCut(p, {0}, {1, 2}), 32);
  // No temporaries cross an empty cut.
  EXPECT_EQ(paramBitsAcrossCut(p, {}, {0, 1, 2}), 0);
}

TEST(Analysis, ParamBitsIgnoresHeaderFields) {
  IrProgram p;
  p.addField("hdr.a", 128);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.a", 128),
                        {Operand::constant(1, 128)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("x", 32),
                        {Operand::field("hdr.a", 128)}));
  // hdr.a crossing the cut costs nothing: headers already travel.
  EXPECT_EQ(paramBitsAcrossCut(p, {0}, {1}), 0);
}

// --- interpreter ---

TEST(Interp, ArithmeticAndWidthTruncation) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("a", 8),
                        {Operand::constant(0x1FF, 16)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("b", 8),
                        {Operand::var("a", 8), Operand::constant(1, 8)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("a"), 0xFFu);
  EXPECT_EQ(pkt.params.at("b"), 0u);  // 0xFF + 1 truncated to 8 bits
}

TEST(Interp, PredicationSkipsAndNegates) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 1),
                        {Operand::constant(0, 1)}));
  Instruction taken = mk(Opcode::kAssign, Operand::var("x", 32),
                         {Operand::constant(11, 32)});
  taken.pred = Operand::var("c", 1);
  taken.pred_negate = true;  // executes because c == 0
  Instruction skipped = mk(Opcode::kAssign, Operand::var("y", 32),
                           {Operand::constant(22, 32)});
  skipped.pred = Operand::var("c", 1);
  p.instrs.push_back(taken);
  p.instrs.push_back(skipped);

  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  const auto stats = interp.runAll(p, pkt);
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(pkt.params.at("x"), 11u);
  EXPECT_EQ(pkt.params.count("y"), 0u);
}

TEST(Interp, RegisterOps) {
  IrProgram p;
  StateObject s;
  s.name = "r";
  s.kind = StateKind::kRegister;
  s.depth = 4;
  s.value_width = 16;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegWrite, Operand::none(),
                        {Operand::constant(2, 8), Operand::constant(100, 16)},
                        sid));
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("n", 16),
                        {Operand::constant(2, 8), Operand::constant(5, 16)},
                        sid));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("v", 16),
                        {Operand::constant(2, 8)}, sid));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("n"), 105u);
  EXPECT_EQ(pkt.params.at("v"), 105u);
}

TEST(Interp, ExactTableLookupHitMiss) {
  IrProgram p;
  StateObject s;
  s.name = "cache";
  s.kind = StateKind::kExactTable;
  s.depth = 8;
  const int sid = p.addState(s);
  p.addField("hdr.key", 32);
  p.instrs.push_back(mk(Opcode::kSemtWrite, Operand::none(),
                        {Operand::constant(7, 32), Operand::constant(70, 32)},
                        sid));
  Instruction lk = mk(Opcode::kSemtLookup, Operand::var("v", 32),
                      {Operand::field("hdr.key", 32)}, sid);
  lk.dest2 = Operand::var("hit", 1);
  p.instrs.push_back(lk);

  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);

  PacketView hitpkt;
  hitpkt.setField("hdr.key", 7);
  interp.runAll(p, hitpkt);
  EXPECT_EQ(hitpkt.params.at("v"), 70u);
  EXPECT_EQ(hitpkt.params.at("hit"), 1u);

  PacketView misspkt;
  misspkt.setField("hdr.key", 9);
  interp.runAll(p, misspkt);
  EXPECT_EQ(misspkt.params.at("v"), 0u);
  EXPECT_EQ(misspkt.params.at("hit"), 0u);
}

TEST(Interp, TableCapacityRejectsWhenFull) {
  StateObject s;
  s.name = "tiny";
  s.kind = StateKind::kExactTable;
  s.depth = 2;
  StateInstance inst(s);
  inst.insert(1, 10);
  inst.insert(2, 20);
  inst.insert(3, 30);  // rejected: full
  std::uint64_t v = 0;
  EXPECT_FALSE(inst.lookup(3, &v));
  EXPECT_TRUE(inst.lookup(1, &v));
  EXPECT_EQ(v, 10u);
  inst.insert(1, 11);  // overwrite allowed
  EXPECT_TRUE(inst.lookup(1, &v));
  EXPECT_EQ(v, 11u);
}

TEST(Interp, TernaryAndLpmMatch) {
  StateObject s;
  s.name = "t";
  s.kind = StateKind::kTernaryTable;
  s.key_width = 32;
  StateInstance inst(s);
  inst.insertLpm(0x0A000000, 8, 100);   // 10.0.0.0/8
  inst.insertLpm(0x0A010000, 16, 200);  // 10.1.0.0/16
  std::uint64_t v = 0;
  ASSERT_TRUE(inst.matchTernary(0x0A010203, &v));
  EXPECT_EQ(v, 200u);  // longest prefix wins (higher priority)
  ASSERT_TRUE(inst.matchTernary(0x0A050607, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_FALSE(inst.matchTernary(0x0B000000, &v));
}

TEST(Interp, VerdictFirstWins) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kSendBack, Operand::none(), {}));
  p.instrs.push_back(mk(Opcode::kDrop, Operand::none(), {}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.verdict, Verdict::kSendBack);
}

TEST(Interp, MirrorDoesNotConsumeVerdict) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kMirror, Operand::none(), {}));
  p.instrs.push_back(mk(Opcode::kForward, Operand::none(), {}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_TRUE(pkt.mirrored);
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST(Interp, ParamsCarryAcrossSnippets) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t", 32),
                        {Operand::constant(42, 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("u", 32),
                        {Operand::var("t", 32), Operand::constant(1, 32)}));
  StateStore s1, s2;
  Rng rng(1);
  Interpreter i1(&s1, &rng), i2(&s2, &rng);
  PacketView pkt;
  // Device 1 runs instr 0; device 2 runs instr 1 using the carried param.
  i1.run(p, std::span<const Instruction>(p.instrs.data(), 1), pkt);
  i2.run(p, std::span<const Instruction>(p.instrs.data() + 1, 1), pkt);
  EXPECT_EQ(pkt.params.at("u"), 43u);
}

TEST(Interp, FloatOpsRoundTrip) {
  IrProgram p;
  // f = itof(6, scale=2) = 3.0; g = f * 2.0; i = ftoi(g) = 6
  p.instrs.push_back(mk(Opcode::kItoF, Operand::var("f", 32),
                        {Operand::constant(6, 32), Operand::constant(2, 32)}));
  const std::uint32_t two = std::bit_cast<std::uint32_t>(2.0f);
  p.instrs.push_back(mk(Opcode::kFMul, Operand::var("g", 32),
                        {Operand::var("f", 32), Operand::constant(two, 32)}));
  p.instrs.push_back(mk(Opcode::kFtoI, Operand::var("i", 32),
                        {Operand::var("g", 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("i"), 6u);
}

TEST(Interp, CryptoRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xDEADBEEFCAFEF00DULL}) {
    for (std::uint64_t k : {0ULL, 42ULL, ~0ULL}) {
      EXPECT_EQ(toyDecrypt(toyEncrypt(v, k), k), v);
      if (k != 0) {
        EXPECT_NE(toyEncrypt(v, k), v);
      }
    }
  }
}

TEST(Interp, HashOpsDeterministicAndBounded) {
  IrProgram p;
  p.addField("hdr.key", 32);
  p.instrs.push_back(mk(Opcode::kHashCrc16, Operand::var("h", 16),
                        {Operand::field("hdr.key", 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView a, b;
  a.setField("hdr.key", 99);
  b.setField("hdr.key", 99);
  interp.runAll(p, a);
  interp.runAll(p, b);
  EXPECT_EQ(a.params.at("h"), b.params.at("h"));
  EXPECT_LE(a.params.at("h"), 0xFFFFu);
}

TEST(Interp, SelectAndCompare) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kCmpLt, Operand::var("c", 1),
                        {Operand::constant(3, 32), Operand::constant(5, 32)}));
  p.instrs.push_back(
      mk(Opcode::kSelect, Operand::var("m", 32),
         {Operand::var("c", 1), Operand::constant(3, 32),
          Operand::constant(5, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("c"), 1u);
  EXPECT_EQ(pkt.params.at("m"), 3u);
}

TEST(Interp, DivModByZeroYieldZero) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kDiv, Operand::var("d", 32),
                        {Operand::constant(9, 32), Operand::constant(0, 32)}));
  p.instrs.push_back(mk(Opcode::kMod, Operand::var("m", 32),
                        {Operand::constant(9, 32), Operand::constant(0, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("d"), 0u);
  EXPECT_EQ(pkt.params.at("m"), 0u);
}

TEST(Interp, SliceExtractsBits) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kSlice, Operand::var("s", 8),
                        {Operand::constant(0xABCD, 16),
                         Operand::constant(8, 8), Operand::constant(8, 8)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("s"), 0xABu);
}

TEST(Interp, ChecksumFolds) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kChecksum, Operand::var("c", 16),
                        {Operand::constant(0x10000, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  // 0x10000 folds to 0x0001; ones' complement = 0xFFFE.
  EXPECT_EQ(pkt.params.at("c"), 0xFFFEu);
}

TEST(Interp, StateStoreIsolatesInstances) {
  StateObject s;
  s.name = "x";
  s.kind = StateKind::kRegister;
  s.depth = 4;
  StateStore a, b;
  a.instantiate(s).regWrite(0, 1);
  b.instantiate(s).regWrite(0, 2);
  EXPECT_EQ(a.find("x")->regRead(0), 1u);
  EXPECT_EQ(b.find("x")->regRead(0), 2u);
  a.remove("x");
  EXPECT_EQ(a.find("x"), nullptr);
  EXPECT_NE(b.find("x"), nullptr);
}

}  // namespace
}  // namespace clickinc::ir
