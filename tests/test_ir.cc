#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/exec_plan.h"
#include "ir/interp.h"
#include "ir/program.h"
#include "util/error.h"
#include "util/strings.h"
#include "verify/verifier.h"

namespace clickinc::ir {
namespace {

using clickinc::Rng;

Instruction mk(Opcode op, Operand dest, std::vector<Operand> srcs,
               int state = -1) {
  return Instruction(op, std::move(dest), std::move(srcs), state);
}

TEST(Opcode, EveryOpcodeHasConsistentInfo) {
  for (int i = 0; i <= static_cast<int>(Opcode::kNop); ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto& info = opcodeInfo(op);
    EXPECT_FALSE(info.name.empty());
    EXPECT_GE(info.min_srcs, 0);
    if (info.max_srcs >= 0) {
      EXPECT_LE(info.min_srcs, info.max_srcs);
    }
  }
}

TEST(Opcode, ClassAssignmentsMatchPaperTables) {
  EXPECT_EQ(opcodeClass(Opcode::kAdd), InstrClass::kBIN);
  EXPECT_EQ(opcodeClass(Opcode::kMul), InstrClass::kBIC);
  EXPECT_EQ(opcodeClass(Opcode::kFAdd), InstrClass::kBCA);
  EXPECT_EQ(opcodeClass(Opcode::kRegAdd), InstrClass::kBSO);
  EXPECT_EQ(opcodeClass(Opcode::kEmtLookup), InstrClass::kBEM);
  EXPECT_EQ(opcodeClass(Opcode::kSemtWrite), InstrClass::kBSEM);
  EXPECT_EQ(opcodeClass(Opcode::kTmtLookup), InstrClass::kBNEM);
  EXPECT_EQ(opcodeClass(Opcode::kStmtWrite), InstrClass::kBSNEM);
  EXPECT_EQ(opcodeClass(Opcode::kDmtLookup), InstrClass::kBDM);
  EXPECT_EQ(opcodeClass(Opcode::kDrop), InstrClass::kBBPF);
  EXPECT_EQ(opcodeClass(Opcode::kMirror), InstrClass::kBAPF);
  EXPECT_EQ(opcodeClass(Opcode::kHashCrc16), InstrClass::kBAF);
  EXPECT_EQ(opcodeClass(Opcode::kAesEnc), InstrClass::kBCF);
}

TEST(Program, VerifyAcceptsWellFormed) {
  IrProgram p;
  p.name = "ok";
  p.addField("hdr.x", 32);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t0", 32),
                        {Operand::field("hdr.x", 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("t0", 32), Operand::constant(1, 32)}));
  EXPECT_NO_THROW(p.verify());
}

TEST(Program, VerifyRejectsUseBeforeDef) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("nope", 32), Operand::constant(1, 32)}));
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, VerifyRejectsBadStateRef) {
  IrProgram p;
  p.instrs.push_back(
      mk(Opcode::kRegRead, Operand::var("v", 32), {Operand::constant(0, 16)},
         /*state=*/5));
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, VerifyRejectsWidePredicate) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 8),
                        {Operand::constant(1, 8)}));
  Instruction guarded = mk(Opcode::kAssign, Operand::var("t", 32),
                           {Operand::constant(2, 32)});
  guarded.pred = Operand::var("c", 8);  // must be 1-bit
  p.instrs.push_back(guarded);
  EXPECT_THROW(p.verify(), InternalError);
}

TEST(Program, StateRegistrationAndLookup) {
  IrProgram p;
  StateObject s;
  s.name = "cms0";
  s.kind = StateKind::kRegister;
  s.depth = 1024;
  const int id = p.addState(s);
  EXPECT_EQ(id, 0);
  ASSERT_NE(p.findState("cms0"), nullptr);
  EXPECT_EQ(p.findState("cms0")->id, 0);
  EXPECT_EQ(p.findState("other"), nullptr);
}

TEST(Program, StorageBits) {
  StateObject reg;
  reg.kind = StateKind::kRegister;
  reg.depth = 100;
  reg.value_width = 32;
  EXPECT_EQ(reg.storageBits(), 3200u);

  StateObject tbl;
  tbl.kind = StateKind::kExactTable;
  tbl.depth = 10;
  tbl.key_width = 16;
  tbl.value_width = 48;
  EXPECT_EQ(tbl.storageBits(), 640u);
}

// --- dependency analysis ---

IrProgram chainProgram() {
  // t0 = hdr.a; t1 = t0+1; t2 = t1*2
  IrProgram p;
  p.addField("hdr.a", 32);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t0", 32),
                        {Operand::field("hdr.a", 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("t1", 32),
                        {Operand::var("t0", 32), Operand::constant(1, 32)}));
  p.instrs.push_back(mk(Opcode::kMul, Operand::var("t2", 32),
                        {Operand::var("t1", 32), Operand::constant(2, 32)}));
  return p;
}

TEST(Analysis, RawDependencies) {
  const auto p = chainProgram();
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(Analysis, StateSharingIsMutual) {
  IrProgram p;
  StateObject s;
  s.name = "ctr";
  s.kind = StateKind::kRegister;
  s.depth = 16;
  s.stateful = true;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("c0", 32),
                        {Operand::constant(0, 8), Operand::constant(1, 32)},
                        sid));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("x", 32),
                        {Operand::constant(7, 32)}));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("c1", 32),
                        {Operand::constant(3, 8)}, sid));
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(2, 0));  // mutual
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(Analysis, StatelessTableNotMutual) {
  IrProgram p;
  StateObject s;
  s.name = "fwdtbl";
  s.kind = StateKind::kExactTable;
  s.stateful = false;  // control-plane populated
  s.depth = 16;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kEmtLookup, Operand::var("a", 32),
                        {Operand::constant(1, 32)}, sid));
  p.instrs.push_back(mk(Opcode::kEmtLookup, Operand::var("b", 32),
                        {Operand::constant(2, 32)}, sid));
  const auto g = buildDepGraph(p);
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(Analysis, WawAndWarOrdering) {
  IrProgram p;
  p.addField("hdr.v", 32);
  // write hdr.v; read hdr.v; write hdr.v again.
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.v", 32),
                        {Operand::constant(1, 32)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("r", 32),
                        {Operand::field("hdr.v", 32)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.v", 32),
                        {Operand::constant(2, 32)}));
  const auto g = buildDepGraph(p);
  EXPECT_TRUE(g.hasEdge(0, 1));  // RAW
  EXPECT_TRUE(g.hasEdge(1, 2));  // WAR
  EXPECT_TRUE(g.hasEdge(0, 2));  // WAW
}

TEST(Analysis, SccGroupsMutualStateUsers) {
  IrProgram p;
  StateObject s;
  s.name = "agg";
  s.kind = StateKind::kRegister;
  s.depth = 8;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("a", 32),
                        {Operand::constant(0, 8), Operand::constant(1, 32)},
                        sid));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("lone", 32),
                        {Operand::constant(5, 32)}));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("b", 32),
                        {Operand::constant(1, 8)}, sid));
  const auto g = buildDepGraph(p);
  const auto comps = stronglyConnectedComponents(g);
  // Expect 2 components: {0,2} (state-sharing) and {1}.
  ASSERT_EQ(comps.size(), 2u);
  bool found_pair = false, found_single = false;
  for (const auto& c : comps) {
    if (c == std::vector<int>{0, 2}) found_pair = true;
    if (c == std::vector<int>{1}) found_single = true;
  }
  EXPECT_TRUE(found_pair);
  EXPECT_TRUE(found_single);
}

TEST(Analysis, SccTopologicalOrder) {
  const auto p = chainProgram();
  const auto g = buildDepGraph(p);
  const auto comps = stronglyConnectedComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], std::vector<int>{0});
  EXPECT_EQ(comps[1], std::vector<int>{1});
  EXPECT_EQ(comps[2], std::vector<int>{2});
}

TEST(Analysis, ParamBitsAcrossCut) {
  const auto p = chainProgram();
  // Cut between instr 1 and 2: t1 (32b) crosses. t0 does not (unused after).
  EXPECT_EQ(paramBitsAcrossCut(p, {0, 1}, {2}), 32);
  // Cut between 0 and 1: only t0 crosses.
  EXPECT_EQ(paramBitsAcrossCut(p, {0}, {1, 2}), 32);
  // No temporaries cross an empty cut.
  EXPECT_EQ(paramBitsAcrossCut(p, {}, {0, 1, 2}), 0);
}

TEST(Analysis, ParamBitsIgnoresHeaderFields) {
  IrProgram p;
  p.addField("hdr.a", 128);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::field("hdr.a", 128),
                        {Operand::constant(1, 128)}));
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("x", 32),
                        {Operand::field("hdr.a", 128)}));
  // hdr.a crossing the cut costs nothing: headers already travel.
  EXPECT_EQ(paramBitsAcrossCut(p, {0}, {1}), 0);
}

// --- interpreter ---

TEST(Interp, ArithmeticAndWidthTruncation) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("a", 8),
                        {Operand::constant(0x1FF, 16)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("b", 8),
                        {Operand::var("a", 8), Operand::constant(1, 8)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("a"), 0xFFu);
  EXPECT_EQ(pkt.params.at("b"), 0u);  // 0xFF + 1 truncated to 8 bits
}

TEST(Interp, PredicationSkipsAndNegates) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 1),
                        {Operand::constant(0, 1)}));
  Instruction taken = mk(Opcode::kAssign, Operand::var("x", 32),
                         {Operand::constant(11, 32)});
  taken.pred = Operand::var("c", 1);
  taken.pred_negate = true;  // executes because c == 0
  Instruction skipped = mk(Opcode::kAssign, Operand::var("y", 32),
                           {Operand::constant(22, 32)});
  skipped.pred = Operand::var("c", 1);
  p.instrs.push_back(taken);
  p.instrs.push_back(skipped);

  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  const auto stats = interp.runAll(p, pkt);
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(pkt.params.at("x"), 11u);
  EXPECT_EQ(pkt.params.count("y"), 0u);
}

TEST(Interp, RegisterOps) {
  IrProgram p;
  StateObject s;
  s.name = "r";
  s.kind = StateKind::kRegister;
  s.depth = 4;
  s.value_width = 16;
  const int sid = p.addState(s);
  p.instrs.push_back(mk(Opcode::kRegWrite, Operand::none(),
                        {Operand::constant(2, 8), Operand::constant(100, 16)},
                        sid));
  p.instrs.push_back(mk(Opcode::kRegAdd, Operand::var("n", 16),
                        {Operand::constant(2, 8), Operand::constant(5, 16)},
                        sid));
  p.instrs.push_back(mk(Opcode::kRegRead, Operand::var("v", 16),
                        {Operand::constant(2, 8)}, sid));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("n"), 105u);
  EXPECT_EQ(pkt.params.at("v"), 105u);
}

TEST(Interp, ExactTableLookupHitMiss) {
  IrProgram p;
  StateObject s;
  s.name = "cache";
  s.kind = StateKind::kExactTable;
  s.depth = 8;
  const int sid = p.addState(s);
  p.addField("hdr.key", 32);
  p.instrs.push_back(mk(Opcode::kSemtWrite, Operand::none(),
                        {Operand::constant(7, 32), Operand::constant(70, 32)},
                        sid));
  Instruction lk = mk(Opcode::kSemtLookup, Operand::var("v", 32),
                      {Operand::field("hdr.key", 32)}, sid);
  lk.dest2 = Operand::var("hit", 1);
  p.instrs.push_back(lk);

  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);

  PacketView hitpkt;
  hitpkt.setField("hdr.key", 7);
  interp.runAll(p, hitpkt);
  EXPECT_EQ(hitpkt.params.at("v"), 70u);
  EXPECT_EQ(hitpkt.params.at("hit"), 1u);

  PacketView misspkt;
  misspkt.setField("hdr.key", 9);
  interp.runAll(p, misspkt);
  EXPECT_EQ(misspkt.params.at("v"), 0u);
  EXPECT_EQ(misspkt.params.at("hit"), 0u);
}

TEST(Interp, TableCapacityRejectsWhenFull) {
  StateObject s;
  s.name = "tiny";
  s.kind = StateKind::kExactTable;
  s.depth = 2;
  StateInstance inst(s);
  inst.insert(1, 10);
  inst.insert(2, 20);
  inst.insert(3, 30);  // rejected: full
  std::uint64_t v = 0;
  EXPECT_FALSE(inst.lookup(3, &v));
  EXPECT_TRUE(inst.lookup(1, &v));
  EXPECT_EQ(v, 10u);
  inst.insert(1, 11);  // overwrite allowed
  EXPECT_TRUE(inst.lookup(1, &v));
  EXPECT_EQ(v, 11u);
}

TEST(Interp, TernaryAndLpmMatch) {
  StateObject s;
  s.name = "t";
  s.kind = StateKind::kTernaryTable;
  s.key_width = 32;
  StateInstance inst(s);
  inst.insertLpm(0x0A000000, 8, 100);   // 10.0.0.0/8
  inst.insertLpm(0x0A010000, 16, 200);  // 10.1.0.0/16
  std::uint64_t v = 0;
  ASSERT_TRUE(inst.matchTernary(0x0A010203, &v));
  EXPECT_EQ(v, 200u);  // longest prefix wins (higher priority)
  ASSERT_TRUE(inst.matchTernary(0x0A050607, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_FALSE(inst.matchTernary(0x0B000000, &v));
}

TEST(Interp, VerdictFirstWins) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kSendBack, Operand::none(), {}));
  p.instrs.push_back(mk(Opcode::kDrop, Operand::none(), {}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.verdict, Verdict::kSendBack);
}

TEST(Interp, MirrorDoesNotConsumeVerdict) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kMirror, Operand::none(), {}));
  p.instrs.push_back(mk(Opcode::kForward, Operand::none(), {}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_TRUE(pkt.mirrored);
  EXPECT_EQ(pkt.verdict, Verdict::kForward);
}

TEST(Interp, ParamsCarryAcrossSnippets) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("t", 32),
                        {Operand::constant(42, 32)}));
  p.instrs.push_back(mk(Opcode::kAdd, Operand::var("u", 32),
                        {Operand::var("t", 32), Operand::constant(1, 32)}));
  StateStore s1, s2;
  Rng rng(1);
  Interpreter i1(&s1, &rng), i2(&s2, &rng);
  PacketView pkt;
  // Device 1 runs instr 0; device 2 runs instr 1 using the carried param.
  i1.run(p, std::span<const Instruction>(p.instrs.data(), 1), pkt);
  i2.run(p, std::span<const Instruction>(p.instrs.data() + 1, 1), pkt);
  EXPECT_EQ(pkt.params.at("u"), 43u);
}

TEST(Interp, FloatOpsRoundTrip) {
  IrProgram p;
  // f = itof(6, scale=2) = 3.0; g = f * 2.0; i = ftoi(g) = 6
  p.instrs.push_back(mk(Opcode::kItoF, Operand::var("f", 32),
                        {Operand::constant(6, 32), Operand::constant(2, 32)}));
  const std::uint32_t two = std::bit_cast<std::uint32_t>(2.0f);
  p.instrs.push_back(mk(Opcode::kFMul, Operand::var("g", 32),
                        {Operand::var("f", 32), Operand::constant(two, 32)}));
  p.instrs.push_back(mk(Opcode::kFtoI, Operand::var("i", 32),
                        {Operand::var("g", 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("i"), 6u);
}

TEST(Interp, CryptoRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xDEADBEEFCAFEF00DULL}) {
    for (std::uint64_t k : {0ULL, 42ULL, ~0ULL}) {
      EXPECT_EQ(toyDecrypt(toyEncrypt(v, k), k), v);
      if (k != 0) {
        EXPECT_NE(toyEncrypt(v, k), v);
      }
    }
  }
}

TEST(Interp, HashOpsDeterministicAndBounded) {
  IrProgram p;
  p.addField("hdr.key", 32);
  p.instrs.push_back(mk(Opcode::kHashCrc16, Operand::var("h", 16),
                        {Operand::field("hdr.key", 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView a, b;
  a.setField("hdr.key", 99);
  b.setField("hdr.key", 99);
  interp.runAll(p, a);
  interp.runAll(p, b);
  EXPECT_EQ(a.params.at("h"), b.params.at("h"));
  EXPECT_LE(a.params.at("h"), 0xFFFFu);
}

TEST(Interp, SelectAndCompare) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kCmpLt, Operand::var("c", 1),
                        {Operand::constant(3, 32), Operand::constant(5, 32)}));
  p.instrs.push_back(
      mk(Opcode::kSelect, Operand::var("m", 32),
         {Operand::var("c", 1), Operand::constant(3, 32),
          Operand::constant(5, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("c"), 1u);
  EXPECT_EQ(pkt.params.at("m"), 3u);
}

TEST(Interp, DivModByZeroYieldZero) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kDiv, Operand::var("d", 32),
                        {Operand::constant(9, 32), Operand::constant(0, 32)}));
  p.instrs.push_back(mk(Opcode::kMod, Operand::var("m", 32),
                        {Operand::constant(9, 32), Operand::constant(0, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("d"), 0u);
  EXPECT_EQ(pkt.params.at("m"), 0u);
}

TEST(Interp, SliceExtractsBits) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kSlice, Operand::var("s", 8),
                        {Operand::constant(0xABCD, 16),
                         Operand::constant(8, 8), Operand::constant(8, 8)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("s"), 0xABu);
}

TEST(Interp, ChecksumFolds) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kChecksum, Operand::var("c", 16),
                        {Operand::constant(0x10000, 32)}));
  StateStore store;
  Rng rng(1);
  Interpreter interp(&store, &rng);
  PacketView pkt;
  interp.runAll(p, pkt);
  // 0x10000 folds to 0x0001; ones' complement = 0xFFFE.
  EXPECT_EQ(pkt.params.at("c"), 0xFFFEu);
}

// --- compiled execution plans (exec_plan.h) ---
//
// Property-style equivalence: randomized programs and packet batches run
// through both the reference switch interpreter and the compiled plan must
// produce bit-identical registers (Param maps), header fields, verdicts,
// stats, and state-store contents.

// Random straight-line program over every opcode family. Table keys and
// register indices are drawn from a small domain so lookups hit and the
// probes below can enumerate the state contents.
IrProgram randomProgram(clickinc::Rng& rng, int ninstr) {
  IrProgram p;
  p.name = "rand";
  for (int f = 0; f < 4; ++f) p.addField(cat("hdr.f", f), 32);

  auto addState = [&](const char* name, StateKind kind, int depth) {
    StateObject s;
    s.name = name;
    s.kind = kind;
    s.depth = static_cast<std::uint64_t>(depth);
    s.key_width = 16;
    s.value_width = 32;
    return p.addState(s);
  };
  const int reg_id = addState("reg", StateKind::kRegister, 8);
  const int emt_id = addState("emt", StateKind::kExactTable, 6);
  const int tmt_id = addState("tmt", StateKind::kTernaryTable, 8);
  const int dmt_id = addState("dmt", StateKind::kDirectTable, 8);

  std::vector<std::string> vars;
  auto randSrc = [&]() -> Operand {
    const auto pick = rng.nextBelow(4);
    if (pick == 0 || vars.empty()) {
      return Operand::constant(rng.nextBelow(16), 32);
    }
    if (pick == 1) {
      return Operand::field(cat("hdr.f", rng.nextBelow(4)), 32);
    }
    return Operand::var(vars[rng.nextBelow(vars.size())], 32);
  };

  const Opcode kPool[] = {
      Opcode::kAssign,   Opcode::kAdd,        Opcode::kSub,
      Opcode::kAnd,      Opcode::kOr,         Opcode::kXor,
      Opcode::kNot,      Opcode::kShl,        Opcode::kShr,
      Opcode::kSlice,    Opcode::kCmpLt,      Opcode::kCmpEq,
      Opcode::kCmpGt,    Opcode::kMin,        Opcode::kMax,
      Opcode::kSelect,   Opcode::kLAnd,       Opcode::kLOr,
      Opcode::kLNot,     Opcode::kMul,        Opcode::kDiv,
      Opcode::kMod,      Opcode::kFAdd,       Opcode::kFMul,
      Opcode::kFtoI,     Opcode::kItoF,       Opcode::kFSqrt,
      Opcode::kFCmpLt,   Opcode::kRegRead,    Opcode::kRegWrite,
      Opcode::kRegAdd,   Opcode::kRegClear,   Opcode::kEmtLookup,
      Opcode::kSemtLookup, Opcode::kSemtWrite, Opcode::kSemtDelete,
      Opcode::kTmtLookup, Opcode::kStmtLookup, Opcode::kStmtWrite,
      Opcode::kDmtLookup, Opcode::kDrop,       Opcode::kForward,
      Opcode::kSendBack, Opcode::kCopyToCpu,  Opcode::kMirror,
      Opcode::kHashCrc16, Opcode::kHashCrc32, Opcode::kHashIdentity,
      Opcode::kChecksum, Opcode::kRandInt,    Opcode::kAesEnc,
      Opcode::kAesDec,   Opcode::kNop,
  };
  const std::size_t npool = sizeof(kPool) / sizeof(kPool[0]);

  for (int i = 0; i < ninstr; ++i) {
    const Opcode op = kPool[rng.nextBelow(npool)];
    const auto& info = opcodeInfo(op);
    Instruction ins;
    ins.op = op;
    const int max_srcs = info.max_srcs < 0 ? 4 : info.max_srcs;
    const int nsrc =
        info.min_srcs +
        static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(max_srcs - info.min_srcs) + 1));
    for (int s = 0; s < nsrc; ++s) ins.srcs.push_back(randSrc());

    if (info.has_dest) {
      if (rng.nextBelow(4) == 0) {
        ins.dest = Operand::field(cat("hdr.f", rng.nextBelow(4)), 32);
      } else {
        std::string name = cat("t", i);
        ins.dest =
            Operand::var(name, 1 + static_cast<int>(rng.nextBelow(32)));
        vars.push_back(std::move(name));
      }
    }
    switch (opcodeClass(op)) {
      case InstrClass::kBSO: ins.state_id = reg_id; break;
      case InstrClass::kBEM:
      case InstrClass::kBSEM: ins.state_id = emt_id; break;
      case InstrClass::kBNEM:
      case InstrClass::kBSNEM: ins.state_id = tmt_id; break;
      case InstrClass::kBDM: ins.state_id = dmt_id; break;
      default: break;
    }
    // Occasionally drop the state reference to cover the null-state path.
    if (ins.state_id >= 0 && rng.nextBelow(10) == 0) ins.state_id = -1;
    if (info.state != StateAccess::kNone && info.has_dest &&
        rng.nextBelow(2) == 0) {
      std::string hit = cat("hit", i);
      ins.dest2 = Operand::var(hit, 1);
      vars.push_back(std::move(hit));
    }
    if (rng.nextBelow(3) == 0) {
      ins.pred = randSrc();
      ins.pred_negate = rng.nextBelow(2) == 0;
    }
    p.instrs.push_back(std::move(ins));
  }
  return p;
}

PacketView randomPacket(clickinc::Rng& rng) {
  PacketView pkt;
  for (int f = 0; f < 4; ++f) {
    pkt.setField(cat("hdr.f", f), rng.nextBelow(16));
  }
  pkt.params["carried"] = rng.nextBelow(100);
  pkt.user_id = 1;
  return pkt;
}

void expectSamePacket(const PacketView& ref, const PacketView& got) {
  EXPECT_EQ(ref.params, got.params);
  EXPECT_EQ(ref.fields, got.fields);
  EXPECT_EQ(ref.verdict, got.verdict);
  EXPECT_EQ(ref.mirrored, got.mirrored);
  EXPECT_EQ(ref.cpu_copied, got.cpu_copied);
}

// Compares every state the program declares: instance existence (lazy
// binding must not differ), register cells, and table contents over the
// small key domain the generator draws from.
void expectSameStores(const StateStore& ref, const StateStore& got,
                      const IrProgram& prog) {
  for (const auto& spec : prog.states) {
    const StateInstance* a = ref.find(spec.name);
    const StateInstance* b = got.find(spec.name);
    ASSERT_EQ(a == nullptr, b == nullptr) << spec.name;
    if (a == nullptr) continue;
    EXPECT_EQ(a->entryCount(), b->entryCount()) << spec.name;
    if (spec.kind == StateKind::kRegister ||
        spec.kind == StateKind::kDirectTable) {
      for (std::uint64_t i = 0; i < spec.depth; ++i) {
        EXPECT_EQ(a->regRead(i), b->regRead(i)) << spec.name << "[" << i
                                                << "]";
      }
    } else {
      for (std::uint64_t key = 0; key < 64; ++key) {
        std::uint64_t va = 0, vb = 0;
        const bool ha = a->lookup(key, &va);
        const bool hb = b->lookup(key, &vb);
        EXPECT_EQ(ha, hb) << spec.name << " key " << key;
        if (ha && hb) {
          EXPECT_EQ(va, vb) << spec.name << " key " << key;
        }
      }
    }
  }
}

TEST(ExecPlan, MatchesReferenceOnRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    clickinc::Rng gen(seed);
    const IrProgram prog = randomProgram(gen, 40);
    const ExecPlan plan = ExecPlan::compile(prog);

    StateStore ref_store, plan_store;
    clickinc::Rng ref_rng(seed * 1000 + 7), plan_rng(seed * 1000 + 7);
    Interpreter ref(&ref_store, &ref_rng);

    clickinc::Rng pkt_gen(seed + 99);
    for (int i = 0; i < 12; ++i) {
      PacketView a = randomPacket(pkt_gen);
      PacketView b = a;
      const ExecStats sa = ref.runAll(prog, a);
      const ExecStats sb = plan.run(&plan_store, &plan_rng, b);
      EXPECT_EQ(sa.executed, sb.executed) << "seed " << seed;
      EXPECT_EQ(sa.skipped, sb.skipped) << "seed " << seed;
      expectSamePacket(a, b);
    }
    expectSameStores(ref_store, plan_store, prog);
  }
}

TEST(ExecPlan, BatchMatchesSequentialReference) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    clickinc::Rng gen(seed);
    const IrProgram prog = randomProgram(gen, 32);
    const ExecPlan plan = ExecPlan::compile(prog);

    clickinc::Rng pkt_gen(seed);
    std::vector<PacketView> ref_pkts, plan_pkts;
    for (int i = 0; i < 16; ++i) {
      ref_pkts.push_back(randomPacket(pkt_gen));
      plan_pkts.push_back(ref_pkts.back());
    }

    StateStore ref_store, plan_store;
    clickinc::Rng ref_rng(seed * 31), plan_rng(seed * 31);
    Interpreter ref(&ref_store, &ref_rng);
    ExecStats ref_total;
    for (auto& pkt : ref_pkts) {
      const auto s = ref.runAll(prog, pkt);
      ref_total.executed += s.executed;
      ref_total.skipped += s.skipped;
    }
    const ExecStats plan_total = plan.runBatch(
        &plan_store, &plan_rng, std::span<PacketView>(plan_pkts));

    EXPECT_EQ(ref_total.executed, plan_total.executed);
    EXPECT_EQ(ref_total.skipped, plan_total.skipped);
    for (std::size_t i = 0; i < ref_pkts.size(); ++i) {
      expectSamePacket(ref_pkts[i], plan_pkts[i]);
    }
    expectSameStores(ref_store, plan_store, prog);
  }
}

TEST(ExecPlan, SegmentedPlansCarryParamsLikeReference) {
  for (std::uint64_t seed = 40; seed <= 44; ++seed) {
    clickinc::Rng gen(seed);
    const IrProgram prog = randomProgram(gen, 30);
    const int n = static_cast<int>(prog.instrs.size());
    const int cut1 = n / 3, cut2 = 2 * n / 3;
    std::vector<std::vector<int>> segments(3);
    for (int i = 0; i < n; ++i) {
      segments[static_cast<std::size_t>(i < cut1 ? 0 : i < cut2 ? 1 : 2)]
          .push_back(i);
    }

    // Per-segment stores model distinct devices; params carry in the view.
    StateStore ref_stores[3], plan_stores[3];
    clickinc::Rng ref_rng(seed), plan_rng(seed);
    clickinc::Rng pkt_gen(seed + 5);
    PacketView a = randomPacket(pkt_gen);
    PacketView b = a;
    for (int s = 0; s < 3; ++s) {
      std::vector<Instruction> seg;
      for (int i : segments[static_cast<std::size_t>(s)]) {
        seg.push_back(prog.instrs[static_cast<std::size_t>(i)]);
      }
      Interpreter ref(&ref_stores[s], &ref_rng);
      ref.run(prog, std::span<const Instruction>(seg), a);

      const ExecPlan plan =
          ExecPlan::compile(prog, segments[static_cast<std::size_t>(s)]);
      plan.run(&plan_stores[s], &plan_rng, b);
    }
    expectSamePacket(a, b);
    for (int s = 0; s < 3; ++s) {
      expectSameStores(ref_stores[s], plan_stores[s], prog);
    }
  }
}

TEST(ExecPlan, PredicatedOffWritesLeaveNoTrace) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 1),
                        {Operand::constant(0, 1)}));
  Instruction skipped = mk(Opcode::kAssign, Operand::var("ghost", 32),
                           {Operand::constant(9, 32)});
  skipped.pred = Operand::var("c", 1);
  p.instrs.push_back(skipped);
  // A state op that never executes must not instantiate its state.
  StateObject s;
  s.name = "never";
  s.kind = StateKind::kRegister;
  s.depth = 4;
  const int sid = p.addState(s);
  Instruction reg = mk(Opcode::kRegAdd, Operand::var("n", 32),
                       {Operand::constant(0, 8), Operand::constant(1, 32)},
                       sid);
  reg.pred = Operand::var("c", 1);
  p.instrs.push_back(reg);

  const ExecPlan plan = ExecPlan::compile(p);
  StateStore store;
  clickinc::Rng rng(1);
  PacketView pkt;
  const auto stats = plan.run(&store, &rng, pkt);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(pkt.params.count("ghost"), 0u);
  EXPECT_EQ(pkt.params.count("n"), 0u);
  EXPECT_EQ(store.find("never"), nullptr);  // lazy binding, like reference
}

TEST(ExecPlan, CacheHitsOnIdenticalSegmentsAndKeysOnContent) {
  clickinc::Rng gen(7);
  IrProgram prog = randomProgram(gen, 20);
  std::vector<int> all(prog.instrs.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  ExecPlanCache cache;
  const auto p1 = cache.get(prog, all);
  const auto p2 = cache.get(prog, all);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().probes, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().compiles, 1u);

  // A structurally identical copy hits too (content keying, not identity).
  IrProgram copy = prog;
  const auto p3 = cache.get(copy, all);
  EXPECT_EQ(p1.get(), p3.get());

  // Changing an immediate misses.
  for (auto& ins : copy.instrs) {
    for (auto& src0 : ins.srcs) {
      if (src0.isConst()) {
        src0.value ^= 0x5A5A;
        goto changed;
      }
    }
  }
changed:
  const auto p4 = cache.get(copy, all);
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

// --- superinstruction fusion (ExecPlanOptions::fuse) ---
//
// Fused plans must be bit-identical to unfused plans and to the
// reference interpreter across packets, ExecStats, and state stores —
// fusion may only change the dispatch count.

TEST(ExecPlanFusion, FusedMatchesUnfusedOnRandomPrograms) {
  std::size_t total_fused = 0;
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    clickinc::Rng gen(seed);
    const IrProgram prog = randomProgram(gen, 40);
    const ExecPlan fused = ExecPlan::compile(prog, {.fuse = true});
    const ExecPlan plain = ExecPlan::compile(prog, {.fuse = false});
    total_fused += fused.fusedPairs();
    EXPECT_EQ(plain.fusedPairs(), 0u);
    EXPECT_EQ(plain.decodedCount(), plain.instrCount());
    EXPECT_EQ(fused.instrCount(), plain.instrCount());
    EXPECT_EQ(fused.decodedCount() + fused.fusedPairs(),
              fused.instrCount());

    StateStore ref_store, fused_store, plain_store;
    clickinc::Rng ref_rng(seed * 77 + 1), fused_rng(seed * 77 + 1),
        plain_rng(seed * 77 + 1);
    Interpreter ref(&ref_store, &ref_rng);

    clickinc::Rng pkt_gen(seed + 3);
    std::vector<PacketView> ref_pkts, fused_pkts, plain_pkts;
    for (int i = 0; i < 10; ++i) {
      ref_pkts.push_back(randomPacket(pkt_gen));
      fused_pkts.push_back(ref_pkts.back());
      plain_pkts.push_back(ref_pkts.back());
    }
    ExecStats ref_total;
    for (auto& pkt : ref_pkts) {
      const auto s = ref.runAll(prog, pkt);
      ref_total.executed += s.executed;
      ref_total.skipped += s.skipped;
    }
    const ExecStats fused_total = fused.runBatch(
        &fused_store, &fused_rng, std::span<PacketView>(fused_pkts));
    const ExecStats plain_total = plain.runBatch(
        &plain_store, &plain_rng, std::span<PacketView>(plain_pkts));

    EXPECT_EQ(ref_total.executed, fused_total.executed) << "seed " << seed;
    EXPECT_EQ(ref_total.skipped, fused_total.skipped) << "seed " << seed;
    EXPECT_EQ(plain_total.executed, fused_total.executed);
    EXPECT_EQ(plain_total.skipped, fused_total.skipped);
    for (std::size_t i = 0; i < ref_pkts.size(); ++i) {
      SCOPED_TRACE(cat("seed ", seed, " packet ", i));
      expectSamePacket(ref_pkts[i], fused_pkts[i]);
      expectSamePacket(ref_pkts[i], plain_pkts[i]);
    }
    expectSameStores(ref_store, fused_store, prog);
    expectSameStores(ref_store, plain_store, prog);
  }
  // The generator must actually exercise the peephole, or this suite
  // proves nothing.
  EXPECT_GT(total_fused, 0u);
}

// Each hot pair the peephole specializes, as a minimal program, checked
// against the reference interpreter and asserted to actually fuse.
TEST(ExecPlanFusion, SuperinstructionsFireOnHotPairs) {
  struct Case {
    const char* name;
    IrProgram prog;
  };
  std::vector<Case> cases;

  auto regState = [](IrProgram& p, const char* name) {
    StateObject s;
    s.name = name;
    s.kind = StateKind::kRegister;
    s.depth = 8;
    return p.addState(s);
  };

  {  // cmp.eq + select (DQAcc's duplicate-detect chain)
    Case c{"cmp_select", {}};
    c.prog.addField("hdr.v", 32);
    c.prog.instrs.push_back(mk(Opcode::kCmpEq, Operand::var("c", 1),
                               {Operand::field("hdr.v", 32),
                                Operand::constant(7, 32)}));
    c.prog.instrs.push_back(mk(Opcode::kSelect, Operand::var("x", 32),
                               {Operand::var("c", 1),
                                Operand::constant(1, 32),
                                Operand::constant(0, 32)}));
    cases.push_back(std::move(c));
  }
  {  // shr + cmp.eq, then cmp.eq + land (MLAgg's overflow checks)
    Case c{"shr_cmp_land", {}};
    c.prog.addField("hdr.v", 32);
    c.prog.instrs.push_back(mk(Opcode::kShr, Operand::var("s", 32),
                               {Operand::field("hdr.v", 32),
                                Operand::constant(31, 32)}));
    c.prog.instrs.push_back(mk(Opcode::kCmpEq, Operand::var("neg", 1),
                               {Operand::var("s", 32),
                                Operand::constant(1, 1)}));
    c.prog.instrs.push_back(mk(Opcode::kCmpEq, Operand::var("c2", 1),
                               {Operand::field("hdr.v", 32),
                                Operand::constant(3, 32)}));
    c.prog.instrs.push_back(mk(Opcode::kLAnd, Operand::var("both", 1),
                               {Operand::var("neg", 1),
                                Operand::var("c2", 1)}));
    cases.push_back(std::move(c));
  }
  {  // hash.crc32 + and (KVS's sketch-index masking)
    Case c{"hash_and", {}};
    c.prog.addField("hdr.key", 32);
    c.prog.instrs.push_back(mk(Opcode::kHashCrc32, Operand::var("h", 32),
                               {Operand::field("hdr.key", 32),
                                Operand::constant(40503, 32)}));
    c.prog.instrs.push_back(mk(Opcode::kAnd, Operand::var("idx", 10),
                               {Operand::var("h", 32),
                                Operand::constant(1023, 32)}));
    cases.push_back(std::move(c));
  }
  {  // reg.read + cmp (load+cmp) and and + reg.read (index+load)
    Case c{"reg_alu_reg", {}};
    c.prog.addField("hdr.v", 32);
    const int sid = regState(c.prog, "r");
    c.prog.instrs.push_back(mk(Opcode::kRegRead, Operand::var("v", 32),
                               {Operand::constant(1, 8)}, sid));
    c.prog.instrs.push_back(mk(Opcode::kCmpEq, Operand::var("hit", 1),
                               {Operand::var("v", 32),
                                Operand::field("hdr.v", 32)}));
    c.prog.instrs.push_back(mk(Opcode::kAnd, Operand::var("i", 3),
                               {Operand::field("hdr.v", 32),
                                Operand::constant(7, 32)}));
    c.prog.instrs.push_back(mk(Opcode::kRegRead, Operand::var("w", 32),
                               {Operand::var("i", 3)}, sid));
    cases.push_back(std::move(c));
  }
  {  // reg.write + reg.write and reg.read + reg.read with distinct
     // states (MLAgg's vector loads/stores)
    Case c{"reg_reg", {}};
    c.prog.addField("hdr.a", 32);
    c.prog.addField("hdr.b", 32);
    const int s1 = regState(c.prog, "ra");
    const int s2 = regState(c.prog, "rb");
    c.prog.instrs.push_back(mk(Opcode::kRegWrite, Operand::none(),
                               {Operand::constant(0, 8),
                                Operand::field("hdr.a", 32)}, s1));
    c.prog.instrs.push_back(mk(Opcode::kRegWrite, Operand::none(),
                               {Operand::constant(0, 8),
                                Operand::field("hdr.b", 32)}, s2));
    c.prog.instrs.push_back(mk(Opcode::kRegRead, Operand::var("x", 32),
                               {Operand::constant(0, 8)}, s1));
    c.prog.instrs.push_back(mk(Opcode::kRegRead, Operand::var("y", 32),
                               {Operand::constant(0, 8)}, s2));
    cases.push_back(std::move(c));
  }
  {  // table-lookup + dependent ALU (the intradevice match-action fuse)
    Case c{"lookup_alu", {}};
    c.prog.addField("hdr.key", 32);
    StateObject s;
    s.name = "emt";
    s.kind = StateKind::kExactTable;
    s.depth = 8;
    const int sid = c.prog.addState(s);
    c.prog.instrs.push_back(mk(Opcode::kSemtWrite, Operand::none(),
                               {Operand::constant(5, 16),
                                Operand::constant(42, 32)}, sid));
    Instruction look = mk(Opcode::kSemtLookup, Operand::var("val", 32),
                          {Operand::field("hdr.key", 32)}, sid);
    look.dest2 = Operand::var("hit", 1);
    c.prog.instrs.push_back(std::move(look));
    c.prog.instrs.push_back(mk(Opcode::kLAnd, Operand::var("use", 1),
                               {Operand::var("hit", 1),
                                Operand::constant(1, 1)}));
    cases.push_back(std::move(c));
  }
  {  // assign runs under a shared predicate (MLAgg's header restores)
    Case c{"pred_assigns", {}};
    c.prog.addField("hdr.a", 32);
    c.prog.addField("hdr.b", 32);
    c.prog.instrs.push_back(mk(Opcode::kAssign, Operand::var("p", 1),
                               {Operand::constant(1, 1)}));
    Instruction a1 = mk(Opcode::kAssign, Operand::field("hdr.a", 32),
                        {Operand::constant(11, 32)});
    a1.pred = Operand::var("p", 1);
    Instruction a2 = mk(Opcode::kAssign, Operand::field("hdr.b", 32),
                        {Operand::constant(22, 32)});
    a2.pred = Operand::var("p", 1);
    c.prog.instrs.push_back(std::move(a1));
    c.prog.instrs.push_back(std::move(a2));
    cases.push_back(std::move(c));
  }

  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    const ExecPlan fused = ExecPlan::compile(c.prog, {.fuse = true});
    EXPECT_GE(fused.fusedPairs(), 1u);
    EXPECT_EQ(fused.instrCount(), c.prog.instrs.size());

    clickinc::Rng pkt_gen(0xBEEF);
    for (int trial = 0; trial < 8; ++trial) {
      PacketView a = randomPacket(pkt_gen);
      a.setField("hdr.v", pkt_gen.nextBelow(16));
      a.setField("hdr.key", pkt_gen.nextBelow(16));
      a.setField("hdr.a", pkt_gen.nextBelow(1u << 16));
      a.setField("hdr.b", pkt_gen.nextBelow(1u << 16));
      PacketView b = a;
      StateStore ref_store, fused_store;
      clickinc::Rng ref_rng(9), fused_rng(9);
      Interpreter ref(&ref_store, &ref_rng);
      const ExecStats sa = ref.runAll(c.prog, a);
      const ExecStats sb = fused.run(&fused_store, &fused_rng, b);
      EXPECT_EQ(sa.executed, sb.executed);
      EXPECT_EQ(sa.skipped, sb.skipped);
      expectSamePacket(a, b);
      expectSameStores(ref_store, fused_store, c.prog);
    }
  }
}

// A pair whose first instruction writes the shared predicate slot must
// not fuse (the reference re-evaluates B's predicate after A ran).
TEST(ExecPlanFusion, PredicateClobberBlocksFusion) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 1),
                        {Operand::constant(1, 1)}));
  // A: c = 0, predicated on c. B: x = 9, predicated on c — the reference
  // skips B because A just cleared the predicate.
  Instruction a = mk(Opcode::kAssign, Operand::var("c", 1),
                     {Operand::constant(0, 1)});
  a.pred = Operand::var("c", 1);
  Instruction b = mk(Opcode::kAssign, Operand::var("x", 32),
                     {Operand::constant(9, 32)});
  b.pred = Operand::var("c", 1);
  p.instrs.push_back(std::move(a));
  p.instrs.push_back(std::move(b));

  const ExecPlan fused = ExecPlan::compile(p, {.fuse = true});
  StateStore ref_store, fused_store;
  clickinc::Rng ref_rng(1), fused_rng(1);
  Interpreter ref(&ref_store, &ref_rng);
  PacketView pa, pb;
  const auto sa = ref.runAll(p, pa);
  const auto sb = fused.run(&fused_store, &fused_rng, pb);
  EXPECT_EQ(sa.executed, sb.executed);
  EXPECT_EQ(sa.skipped, sb.skipped);
  expectSamePacket(pa, pb);
  EXPECT_EQ(pb.params.count("x"), 0u);  // B stayed predicated off
}

// Skipped fused records must count both component instructions, like
// the reference skipping them one by one.
TEST(ExecPlanFusion, SkippedPairCountsBothInstructions) {
  IrProgram p;
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("c", 1),
                        {Operand::constant(0, 1)}));
  Instruction a = mk(Opcode::kAdd, Operand::var("x", 32),
                     {Operand::constant(1, 32), Operand::constant(2, 32)});
  a.pred = Operand::var("c", 1);
  Instruction b = mk(Opcode::kAdd, Operand::var("y", 32),
                     {Operand::constant(3, 32), Operand::constant(4, 32)});
  b.pred = Operand::var("c", 1);
  p.instrs.push_back(std::move(a));
  p.instrs.push_back(std::move(b));

  const ExecPlan fused = ExecPlan::compile(p, {.fuse = true});
  ASSERT_EQ(fused.fusedPairs(), 1u);
  StateStore store;
  clickinc::Rng rng(1);
  PacketView pkt;
  const auto stats = fused.run(&store, &rng, pkt);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(pkt.params.count("x"), 0u);
  EXPECT_EQ(pkt.params.count("y"), 0u);
}

// Toggling the fusion knob must never serve a plan compiled under the
// other setting — the cache keys on the option.
TEST(ExecPlanFusion, CacheKeysIncludeFusionOption) {
  IrProgram p;
  p.addField("hdr.v", 32);
  p.instrs.push_back(mk(Opcode::kCmpEq, Operand::var("c", 1),
                        {Operand::field("hdr.v", 32),
                         Operand::constant(1, 32)}));
  p.instrs.push_back(mk(Opcode::kSelect, Operand::var("x", 32),
                        {Operand::var("c", 1), Operand::constant(1, 32),
                         Operand::constant(0, 32)}));
  std::vector<int> all{0, 1};

  ExecPlanCache cache;
  const auto fused = cache.get(p, all, {.fuse = true});
  const auto plain = cache.get(p, all, {.fuse = false});
  EXPECT_NE(fused.get(), plain.get());
  EXPECT_EQ(fused->fusedPairs(), 1u);
  EXPECT_EQ(plain->fusedPairs(), 0u);
  EXPECT_EQ(cache.stats().compiles, 2u);
  // Re-probing under each setting hits the matching entry.
  EXPECT_EQ(cache.get(p, all, {.fuse = true}).get(), fused.get());
  EXPECT_EQ(cache.get(p, all, {.fuse = false}).get(), plain.get());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().compiles, 2u);
}

// --- fusion legality guard (pred-clobber) regressions --------------------
//
// Each case is an adjacent fusable pair where A writes the shared 1-bit
// predicate slot. With the guard on (default), the pair must stay
// unfused and the plan must scan clean. Only the TEST-ONLY escape hatch
// (unsafe_fuse_ignore_pred_guard) lets the illegal pair through — and the
// verifier's checkFusedPlan must then flag exactly that record.

namespace {

struct ClobberCase {
  std::string name;
  IrProgram prog;
};

std::vector<ClobberCase> predClobberCases() {
  std::vector<ClobberCase> cases;
  {  // assign/assign: A clears the predicate both run under
    ClobberCase c{"assign_assign", {}};
    c.prog.instrs.push_back(mk(Opcode::kAssign, Operand::var("p", 1),
                               {Operand::constant(1, 1)}));
    Instruction a = mk(Opcode::kAssign, Operand::var("p", 1),
                       {Operand::constant(0, 1)});
    a.pred = Operand::var("p", 1);
    Instruction b = mk(Opcode::kAssign, Operand::var("x", 32),
                       {Operand::constant(9, 32)});
    b.pred = Operand::var("p", 1);
    c.prog.instrs.push_back(std::move(a));
    c.prog.instrs.push_back(std::move(b));
    cases.push_back(std::move(c));
  }
  {  // add/add: A recomputes the predicate it is guarded by
    ClobberCase c{"add_add", {}};
    c.prog.instrs.push_back(mk(Opcode::kAssign, Operand::var("p", 1),
                               {Operand::constant(1, 1)}));
    Instruction a = mk(Opcode::kAdd, Operand::var("p", 1),
                       {Operand::var("p", 1), Operand::constant(1, 1)});
    a.pred = Operand::var("p", 1);
    Instruction b = mk(Opcode::kAdd, Operand::var("y", 32),
                       {Operand::constant(3, 32), Operand::constant(4, 32)});
    b.pred = Operand::var("p", 1);
    c.prog.instrs.push_back(std::move(a));
    c.prog.instrs.push_back(std::move(b));
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace

TEST(ExecPlanFusion, GuardKeepsClobberingPairsUnfusedAndPlansScanClean) {
  for (auto& c : predClobberCases()) {
    SCOPED_TRACE(c.name);
    const ExecPlan plan = ExecPlan::compile(c.prog, {.fuse = true});
    EXPECT_EQ(plan.fusedPairs(), 0u);
    verify::VerifyReport rep;
    verify::checkFusedPlan(plan, /*user=*/0, /*device=*/0, /*segment=*/0,
                           &rep);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
}

TEST(ExecPlanFusion, UnsafeEscapeHatchFusesAndVerifierFlagsTheRecord) {
  for (auto& c : predClobberCases()) {
    SCOPED_TRACE(c.name);
    const ExecPlan plan = ExecPlan::compile(
        c.prog, {.fuse = true, .unsafe_fuse_ignore_pred_guard = true});
    ASSERT_EQ(plan.fusedPairs(), 1u);
    verify::VerifyReport rep;
    verify::checkFusedPlan(plan, /*user=*/3, /*device=*/7, /*segment=*/1,
                           &rep);
    ASSERT_EQ(rep.violations.size(), 1u) << rep.summary();
    const auto& v = rep.violations.front();
    EXPECT_EQ(v.invariant, verify::Invariant::kIrWellFormed);
    EXPECT_EQ(v.check, "pred-clobber");
    EXPECT_EQ(v.user, 3);
    EXPECT_EQ(v.device, 7);
    EXPECT_EQ(v.segment, 1);
  }
}

// A legal predicated pair (A does not touch the slot) fuses under the
// default guard and still scans clean — the guard is precise, not a
// blanket ban on predicated fusion.
TEST(ExecPlanFusion, GuardLeavesNonClobberingPredicatedPairsAlone) {
  IrProgram p;
  p.addField("hdr.a", 32);
  p.addField("hdr.b", 32);
  p.instrs.push_back(mk(Opcode::kAssign, Operand::var("p", 1),
                        {Operand::constant(1, 1)}));
  Instruction a = mk(Opcode::kAssign, Operand::field("hdr.a", 32),
                     {Operand::constant(11, 32)});
  a.pred = Operand::var("p", 1);
  Instruction b = mk(Opcode::kAssign, Operand::field("hdr.b", 32),
                     {Operand::constant(22, 32)});
  b.pred = Operand::var("p", 1);
  p.instrs.push_back(std::move(a));
  p.instrs.push_back(std::move(b));

  const ExecPlan plan = ExecPlan::compile(p, {.fuse = true});
  EXPECT_GE(plan.fusedPairs(), 1u);
  verify::VerifyReport rep;
  verify::checkFusedPlan(plan, 0, 0, 0, &rep);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

// The cache key must carry the unsafe bit too: probing the same program
// with and without the escape hatch yields distinct plans.
TEST(ExecPlanFusion, CacheKeysIncludeUnsafeGuardBit) {
  std::vector<ClobberCase> cases = predClobberCases();
  ASSERT_FALSE(cases.empty());
  const IrProgram& p = cases.front().prog;
  std::vector<int> all{0, 1, 2};

  ExecPlanCache cache;
  const auto guarded = cache.get(p, all, {.fuse = true});
  const auto unsafe = cache.get(
      p, all, {.fuse = true, .unsafe_fuse_ignore_pred_guard = true});
  EXPECT_NE(guarded.get(), unsafe.get());
  EXPECT_EQ(guarded->fusedPairs(), 0u);
  EXPECT_EQ(unsafe->fusedPairs(), 1u);
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_EQ(cache.get(p, all, {.fuse = true}).get(), guarded.get());
  EXPECT_EQ(cache.get(p, all,
                      {.fuse = true, .unsafe_fuse_ignore_pred_guard = true})
                .get(),
            unsafe.get());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(Interp, StateStoreIsolatesInstances) {
  StateObject s;
  s.name = "x";
  s.kind = StateKind::kRegister;
  s.depth = 4;
  StateStore a, b;
  a.instantiate(s).regWrite(0, 1);
  b.instantiate(s).regWrite(0, 2);
  EXPECT_EQ(a.find("x")->regRead(0), 1u);
  EXPECT_EQ(b.find("x")->regRead(0), 2u);
  a.remove("x");
  EXPECT_EQ(a.find("x"), nullptr);
  EXPECT_NE(b.find("x"), nullptr);
}

}  // namespace
}  // namespace clickinc::ir
