#include <gtest/gtest.h>

#include <set>

#include "topo/ec.h"
#include "topo/topology.h"
#include "util/error.h"

namespace clickinc::topo {
namespace {

TEST(Topology, ChainShape) {
  const auto t = Topology::chain(
      {device::makeTofino(), device::makeTofino(), device::makeTofino()});
  EXPECT_EQ(t.nodeCount(), 5);  // client + 3 + server
  const auto path = t.shortestPath(0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
}

TEST(Topology, FatTreeCounts) {
  const auto t = Topology::fatTree(4, 2, device::makeTofino(),
                                   device::makeTrident4(),
                                   device::makeTofino2());
  // k=4: 4 cores, 4 pods x (2 agg + 2 tor + 4 hosts).
  int cores = 0, aggs = 0, tors = 0, hosts = 0;
  for (const auto& n : t.nodes()) {
    if (n.layer == 3) ++cores;
    if (n.layer == 2 && n.kind == NodeKind::kSwitch) ++aggs;
    if (n.layer == 1) ++tors;
    if (n.kind == NodeKind::kHost) ++hosts;
  }
  EXPECT_EQ(cores, 4);
  EXPECT_EQ(aggs, 8);
  EXPECT_EQ(tors, 8);
  EXPECT_EQ(hosts, 16);
}

TEST(Topology, FatTreePathsGoThroughCore) {
  const auto t = Topology::fatTree(4, 1, device::makeTofino(),
                                   device::makeTofino(),
                                   device::makeTofino());
  int h0 = -1, h1 = -1;
  for (const auto& n : t.nodes()) {
    if (n.kind == NodeKind::kHost && n.pod == 0 && h0 < 0) h0 = n.id;
    if (n.kind == NodeKind::kHost && n.pod == 2 && h1 < 0) h1 = n.id;
  }
  const auto path = t.shortestPath(h0, h1);
  ASSERT_FALSE(path.empty());
  bool through_core = false;
  for (int id : path) {
    if (t.node(id).layer == 3) through_core = true;
  }
  EXPECT_TRUE(through_core);
  EXPECT_EQ(path.size(), 7u);  // host-tor-agg-core-agg-tor-host
}

TEST(Topology, SpineLeafFullMesh) {
  const auto t = Topology::spineLeaf(3, 4, 2, device::makeTofino(),
                                     device::makeTofino2());
  int spines = 0, leaves = 0;
  for (const auto& n : t.nodes()) {
    if (n.layer == 2) ++spines;
    if (n.layer == 1) ++leaves;
  }
  EXPECT_EQ(spines, 3);
  EXPECT_EQ(leaves, 4);
  // Each leaf reaches any other leaf in 2 hops via any spine.
  const int l0 = t.findNode("Leaf0");
  const int l3 = t.findNode("Leaf3");
  EXPECT_EQ(t.shortestPath(l0, l3).size(), 3u);
}

TEST(Topology, PaperEmulationInventory) {
  const auto t = Topology::paperEmulation();
  EXPECT_GE(t.findNode("Core0"), 0);
  EXPECT_GE(t.findNode("ToR5"), 0);
  EXPECT_GE(t.findNode("Agg4"), 0);
  EXPECT_GE(t.findNode("NFP0"), 0);
  EXPECT_GE(t.findNode("FNIC1"), 0);
  EXPECT_GE(t.findNode("BF0"), 0);
  EXPECT_GE(t.findNode("pod2b"), 0);
  // Bypass FPGA attached to pod2 aggs.
  const auto& agg4 = t.node(t.findNode("Agg4"));
  EXPECT_GE(agg4.attached_accel, 0);
  EXPECT_EQ(t.node(agg4.attached_accel).kind, NodeKind::kAccel);
}

TEST(Ec, ChainDevicesAreDistinct) {
  const auto t = Topology::chain(
      {device::makeTofino(), device::makeTofino(), device::makeTofino()});
  const auto ec = equivalenceClasses(t);
  // The middle switch differs from the end switches (host adjacency), and
  // the two end switches differ because their hosts are distinct anchors.
  std::set<int> classes(ec.begin(), ec.end());
  EXPECT_EQ(classes.size(), ec.size());  // everything distinct in a chain
}

TEST(Ec, FatTreeMergesAggsAndCores) {
  const auto t = Topology::fatTree(4, 1, device::makeTofino(),
                                   device::makeTrident4(),
                                   device::makeTofino2());
  const auto ec = equivalenceClasses(t);
  // Aggs within one pod share an EC.
  std::map<int, std::set<int>> agg_ecs_by_pod;
  std::set<int> core_ecs;
  for (const auto& n : t.nodes()) {
    if (n.layer == 2) agg_ecs_by_pod[n.pod].insert(ec[static_cast<std::size_t>(n.id)]);
    if (n.layer == 3) core_ecs.insert(ec[static_cast<std::size_t>(n.id)]);
  }
  for (const auto& [pod, ecs] : agg_ecs_by_pod) {
    EXPECT_EQ(ecs.size(), 1u) << "pod " << pod;
  }
  EXPECT_EQ(core_ecs.size(), 1u);
  // ToRs serve distinct hosts, so they stay distinct.
  std::set<int> tor_ecs;
  int tor_count = 0;
  for (const auto& n : t.nodes()) {
    if (n.layer == 1) {
      tor_ecs.insert(ec[static_cast<std::size_t>(n.id)]);
      ++tor_count;
    }
  }
  EXPECT_EQ(static_cast<int>(tor_ecs.size()), tor_count);
}

TEST(EcTree, SinglePathChainBecomesChainTree) {
  const auto t = Topology::chain(
      {device::makeTofino(), device::makeTofino2(), device::makeTrident4()});
  TrafficSpec spec;
  spec.sources = {{t.findNode("client"), 10.0}};
  spec.dst_host = t.findNode("server");
  const auto tree = buildEcTree(t, spec);
  // Root is d0 (the first common EC from the client side is... the whole
  // path is common, so root = first device), then server chain d1, d2.
  EXPECT_EQ(tree.nodes.size(), 3u);
  EXPECT_EQ(tree.server_chain.size(), 2u);
  EXPECT_DOUBLE_EQ(tree.total_traffic, 10.0);
}

TEST(EcTree, PaperTopologyTwoPodsToPod2) {
  const auto t = Topology::paperEmulation();
  TrafficSpec spec;
  spec.sources = {{t.findNode("pod0a"), 10.0}, {t.findNode("pod1a"), 20.0}};
  spec.dst_host = t.findNode("pod2b");
  const auto tree = buildEcTree(t, spec);

  // Root must be the core EC (both Tofino2 cores merged).
  const auto& root = tree.at(tree.root);
  EXPECT_EQ(root.model->chip, device::ChipKind::kTofino2);
  EXPECT_EQ(root.devices.size(), 2u);

  // Two client leaves: the pod0 NFP NIC and the pod1 FPGA NIC.
  const auto leaves = tree.clientLeaves();
  ASSERT_EQ(leaves.size(), 2u);
  std::set<device::ChipKind> leaf_chips;
  for (int l : leaves) leaf_chips.insert(tree.at(l).model->chip);
  EXPECT_TRUE(leaf_chips.count(device::ChipKind::kNfp));
  EXPECT_TRUE(leaf_chips.count(device::ChipKind::kFpgaNic));

  // Server chain: pod2 Agg EC (with bypass FPGA) then ToR5.
  ASSERT_EQ(tree.server_chain.size(), 2u);
  const auto& agg = tree.at(tree.server_chain[0]);
  EXPECT_EQ(agg.model->chip, device::ChipKind::kTrident4);
  ASSERT_NE(agg.bypass, nullptr);
  EXPECT_EQ(agg.bypass->chip, device::ChipKind::kFpga);
  const auto& tor = tree.at(tree.server_chain[1]);
  EXPECT_EQ(tor.model->chip, device::ChipKind::kTofino);
  EXPECT_EQ(tor.devices.size(), 1u);

  EXPECT_DOUBLE_EQ(tree.total_traffic, 30.0);
}

TEST(EcTree, UnreachableSourceThrows) {
  Topology t;
  Node a;
  a.name = "a";
  a.kind = NodeKind::kHost;
  const int ha = t.addNode(a);
  Node b;
  b.name = "b";
  b.kind = NodeKind::kHost;
  const int hb = t.addNode(b);  // no link
  TrafficSpec spec;
  spec.sources = {{ha, 1.0}};
  spec.dst_host = hb;
  EXPECT_THROW(buildEcTree(t, spec), PlacementError);
}

TEST(EcTree, LeafTrafficAccumulates) {
  const auto t = Topology::paperEmulation();
  TrafficSpec spec;
  spec.sources = {{t.findNode("pod0a"), 5.0}, {t.findNode("pod0b"), 7.0}};
  spec.dst_host = t.findNode("pod2a");
  const auto tree = buildEcTree(t, spec);
  double leaf_sum = 0;
  for (const auto& n : tree.nodes) leaf_sum += n.leaf_traffic;
  EXPECT_DOUBLE_EQ(leaf_sum, 12.0);
}

}  // namespace
}  // namespace clickinc::topo
