// Datacenter-scale subsystem suites (docs/scale.md): fat-tree generator
// counts against the k-ary closed forms, pod metadata partitioning,
// reachability, DomainIndex classification, sharded-vs-unsharded
// bit-identity across 1/2/8-thread pools, per-domain verifier
// reconciliation, and the churn harness under sustained fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/service.h"
#include "durable/serialize.h"
#include "place/intradevice.h"
#include "scale/churn.h"
#include "scale/domains.h"
#include "scale/fattree.h"
#include "util/crc.h"
#include "util/strings.h"

namespace clickinc {
namespace {

// --- generator: counts match the closed forms ---------------------------

struct Counted {
  int switches = 0, hosts = 0, nics = 0, programmable = 0;
};

Counted countNodes(const topo::Topology& topo) {
  Counted c;
  for (const auto& n : topo.nodes()) {
    switch (n.kind) {
      case topo::NodeKind::kSwitch: ++c.switches; break;
      case topo::NodeKind::kHost: ++c.hosts; break;
      case topo::NodeKind::kNic: ++c.nics; break;
      default: break;
    }
    if (n.programmable) ++c.programmable;
  }
  return c;
}

TEST(FatTreeGen, CountsMatchClosedFormAcrossK) {
  for (const int k : {4, 8, 16}) {
    scale::FatTreeParams p;
    p.k = k;
    p.hosts_per_tor = k == 16 ? 8 : 2;
    const auto shape = scale::expectedShape(p);
    const auto ft = scale::buildFatTree(p);
    const auto c = countNodes(ft.topo);
    EXPECT_EQ(c.switches, shape.switches) << "k=" << k;
    EXPECT_EQ(c.hosts, shape.hosts) << "k=" << k;
    EXPECT_EQ(c.nics, 0) << "k=" << k;
    EXPECT_EQ(static_cast<int>(ft.topo.nodes().size()), shape.nodes);
    EXPECT_EQ(static_cast<int>(ft.topo.links().size()), shape.links);
    EXPECT_EQ(static_cast<int>(ft.pods.size()), k);
    EXPECT_EQ(static_cast<int>(ft.cores.size()), shape.cores);
    // Closed forms themselves, independently of the generator.
    const int half = k / 2;
    EXPECT_EQ(shape.cores, half * half);
    EXPECT_EQ(shape.aggs, k * half);
    EXPECT_EQ(shape.tors, k * half);
    EXPECT_EQ(shape.hosts, k * half * p.hosts_per_tor);
    EXPECT_EQ(shape.links, 2 * k * half * half + shape.hosts);
  }
  // k=16 at 8 hosts/ToR is the paper-scale point: 320 switches, 1024 hosts.
  scale::FatTreeParams big;
  big.k = 16;
  big.hosts_per_tor = 8;
  const auto s = scale::expectedShape(big);
  EXPECT_EQ(s.switches, 320);
  EXPECT_EQ(s.hosts, 1024);
}

TEST(FatTreeGen, NicTierSplicesEveryHost) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  p.host_nics = true;
  const auto shape = scale::expectedShape(p);
  const auto ft = scale::buildFatTree(p);
  const auto c = countNodes(ft.topo);
  EXPECT_EQ(c.nics, shape.hosts);
  EXPECT_EQ(static_cast<int>(ft.topo.links().size()), shape.links);
  EXPECT_EQ(shape.host_links, 2 * shape.hosts);
  for (const auto& pod : ft.pods) {
    EXPECT_EQ(pod.nics.size(), pod.hosts.size());
  }
}

TEST(FatTreeGen, PodMetadataPartitionsNodeSetExactly) {
  for (const bool nics : {false, true}) {
    scale::FatTreeParams p;
    p.k = 8;
    p.hosts_per_tor = 2;
    p.host_nics = nics;
    const auto ft = scale::buildFatTree(p);
    std::multiset<int> seen(ft.cores.begin(), ft.cores.end());
    for (const auto& pod : ft.pods) {
      seen.insert(pod.tors.begin(), pod.tors.end());
      seen.insert(pod.aggs.begin(), pod.aggs.end());
      seen.insert(pod.hosts.begin(), pod.hosts.end());
      seen.insert(pod.nics.begin(), pod.nics.end());
    }
    ASSERT_EQ(seen.size(), ft.topo.nodes().size());
    for (const auto& n : ft.topo.nodes()) {
      EXPECT_EQ(seen.count(n.id), 1u) << "node " << n.id;
    }
  }
}

TEST(FatTreeGen, HostPairsReachableAndIntraPodPathsStayInPod) {
  scale::FatTreeParams p;
  p.k = 16;
  p.hosts_per_tor = 8;
  const auto ft = scale::buildFatTree(p);
  const auto hosts = ft.allHosts();
  ASSERT_EQ(hosts.size(), 1024u);
  const scale::DomainIndex idx(ft.topo);
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int a = hosts[rng.nextBelow(hosts.size())];
    int b = a;
    while (b == a) b = hosts[rng.nextBelow(hosts.size())];
    const auto path = ft.topo.shortestPathUp(a, b);
    ASSERT_FALSE(path.empty()) << a << "->" << b;
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    if (idx.domainOf(a) == idx.domainOf(b)) {
      // The healthy intra-pod route never crosses the core tier — the
      // invariant per-pod placement domains rest on.
      for (const int node : path) {
        EXPECT_EQ(idx.domainOf(node), idx.domainOf(a))
            << "intra-pod path " << a << "->" << b << " crossed node "
            << node;
      }
    }
  }
  // Small k: every pair, exhaustively.
  scale::FatTreeParams small;
  small.k = 4;
  const auto sft = scale::buildFatTree(small);
  const auto shosts = sft.allHosts();
  for (const int a : shosts) {
    for (const int b : shosts) {
      if (a == b) continue;
      EXPECT_FALSE(sft.topo.shortestPathUp(a, b).empty());
    }
  }
}

// --- domain index --------------------------------------------------------

TEST(DomainIndex, ClassifiesTrafficByPodSpan) {
  const auto ft = scale::buildFatTree({});  // k=4, 2 hosts/ToR
  const scale::DomainIndex idx(ft.topo);
  ASSERT_EQ(idx.domainCount(), 4);
  for (const int core : ft.cores) {
    EXPECT_EQ(idx.domainOf(core), scale::kCrossDomain);
  }
  topo::TrafficSpec intra;
  intra.sources.push_back({ft.pods[1].hosts[0], 1.0});
  intra.dst_host = ft.pods[1].hosts[3];
  EXPECT_EQ(idx.domainOfTraffic(intra), 1);
  topo::TrafficSpec cross;
  cross.sources.push_back({ft.pods[0].hosts[0], 1.0});
  cross.dst_host = ft.pods[2].hosts[0];
  EXPECT_EQ(idx.domainOfTraffic(cross), scale::kCrossDomain);
  // Domain devices are disjoint, node-id ascending, and all programmable.
  std::set<int> all;
  for (int d = 0; d < idx.domainCount(); ++d) {
    const auto& devs = idx.domainDevices(d);
    EXPECT_TRUE(std::is_sorted(devs.begin(), devs.end()));
    for (const int dev : devs) {
      EXPECT_TRUE(ft.topo.nodes()[static_cast<std::size_t>(dev)]
                      .programmable);
      EXPECT_TRUE(all.insert(dev).second) << "device " << dev;
    }
  }
}

// --- sharded submitAll bit-identity --------------------------------------

// Full behavioural digest: occupancy ledger fingerprints, per-tenant plan
// fingerprints, and the emulator deployment digest.
std::string digestOf(core::ClickIncService& svc) {
  std::string out;
  for (const auto& n : svc.topology().nodes()) {
    if (!n.programmable) continue;
    out += cat("occ", n.id, "=",
               place::occupancyFingerprint(svc.occupancy().of(n.id)), ";");
  }
  for (const auto& [user, dep] : svc.deployments()) {
    out += cat("u", user, "=", durable::planFingerprint(dep.plan), ";");
  }
  out += cat("emu=", svc.emulator().deploymentDigest());
  return out;
}

// One intra-pod request per pod: pairwise-disjoint placement domains.
// KVS joins the rotation only when the tree carries the smartNIC tier it
// structurally needs.
std::vector<core::SubmitRequest> disjointPodBatch(
    const scale::FatTree& ft, const place::PlacementOptions& opts) {
  std::vector<core::SubmitRequest> reqs;
  for (std::size_t pod = 0; pod < ft.pods.size(); ++pod) {
    topo::TrafficSpec traffic;
    traffic.sources.push_back({ft.pods[pod].hosts[0], 10.0});
    traffic.dst_host = ft.pods[pod].hosts[2];
    switch (ft.params.host_nics ? pod % 3 : 1 + pod % 2) {
      case 0:
        reqs.push_back(core::SubmitRequest::fromTemplate(
            "KVS", {{"CacheSize", 64}, {"ValDim", 4}, {"TH", 20}}, traffic,
            opts));
        break;
      case 1:
        reqs.push_back(core::SubmitRequest::fromTemplate(
            "MLAgg",
            {{"NumAgg", 128}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}},
            traffic, opts));
        break;
      default:
        reqs.push_back(core::SubmitRequest::fromTemplate(
            "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}}, traffic, opts));
        break;
    }
  }
  return reqs;
}

// With adaptive weights OFF, plans are occupancy-ratio-independent, so the
// sharded parallel path must be bit-identical to the plain UNSHARDED
// sequential path — across 1/2/8-thread pools, with zero commit-stage
// re-places (disjoint pods never invalidate each other).
TEST(DomainSharding, DisjointPodsMatchUnshardedSequentialFixedWeights) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  p.host_nics = true;  // KVS in rotation: exercises the bypass tier too
  const auto ft = scale::buildFatTree(p);
  place::PlacementOptions opts;
  opts.adaptive = false;

  core::ClickIncService ref(ft.topo);
  for (auto& req : disjointPodBatch(ft, opts)) {
    const auto r = ref.submit(std::move(req));
    ASSERT_TRUE(r.ok) << r.error.detail;
  }
  const std::string want = digestOf(ref);

  for (const int threads : {1, 2, 8}) {
    core::ClickIncService svc(ft.topo);
    svc.setDomainSharding(true);
    svc.setConcurrency(threads);
    const auto results = svc.submitAll(disjointPodBatch(ft, opts));
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok) << r.error.detail;
      EXPECT_FALSE(r.recompiled)
          << "disjoint pods must not invalidate each other (threads="
          << threads << ")";
      EXPECT_EQ(r.attempts, 1);
    }
    EXPECT_EQ(digestOf(svc), want) << "threads=" << threads;
  }
}

// With adaptive weights ON the ratio is pod-scoped, a pure function of
// pod-local occupancy: the sharded parallel batch must equal sharded
// sequential submits bit for bit, again with zero re-places.
TEST(DomainSharding, ParallelMatchesSequentialAdaptiveWeights) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  const auto ft = scale::buildFatTree(p);
  const place::PlacementOptions opts;  // adaptive = true (default)

  core::ClickIncService ref(ft.topo);
  ref.setDomainSharding(true);
  for (auto& req : disjointPodBatch(ft, opts)) {
    const auto r = ref.submit(std::move(req));
    ASSERT_TRUE(r.ok) << r.error.detail;
  }
  const std::string want = digestOf(ref);

  for (const int threads : {1, 2, 8}) {
    core::ClickIncService svc(ft.topo);
    svc.setDomainSharding(true);
    svc.setConcurrency(threads);
    const auto results = svc.submitAll(disjointPodBatch(ft, opts));
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok) << r.error.detail;
      EXPECT_FALSE(r.recompiled) << "threads=" << threads;
    }
    EXPECT_EQ(digestOf(svc), want) << "threads=" << threads;
  }
}

// Same-pod contention and cross-pod traffic still commit correctly: the
// second same-pod tenant re-places against the moved pod version, and the
// cross-pod request escapes to the global path. End state matches the
// sequential reference regardless.
TEST(DomainSharding, SamePodContentionAndCrossPodEscape) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  const auto ft = scale::buildFatTree(p);
  const place::PlacementOptions opts;
  auto batch = [&] {
    std::vector<core::SubmitRequest> reqs;
    topo::TrafficSpec a;  // pod 0
    a.sources.push_back({ft.pods[0].hosts[0], 10.0});
    a.dst_host = ft.pods[0].hosts[3];
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 3}}, a, opts));
    topo::TrafficSpec b;  // pod 0 again: contends with `a`
    b.sources.push_back({ft.pods[0].hosts[1], 10.0});
    b.dst_host = ft.pods[0].hosts[2];
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}}, b, opts));
    topo::TrafficSpec c;  // pod 1 -> pod 2: cross-domain escape
    c.sources.push_back({ft.pods[1].hosts[0], 10.0});
    c.dst_host = ft.pods[2].hosts[0];
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "MLAgg",
        {{"NumAgg", 128}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}},
        c, opts));
    return reqs;
  };

  core::ClickIncService ref(ft.topo);
  ref.setDomainSharding(true);
  for (auto& req : batch()) {
    const auto r = ref.submit(std::move(req));
    ASSERT_TRUE(r.ok) << r.error.detail;
  }
  const std::string want = digestOf(ref);

  core::ClickIncService svc(ft.topo);
  svc.setDomainSharding(true);
  svc.setConcurrency(4);
  const auto results = svc.submitAll(batch());
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error.detail;
  EXPECT_EQ(digestOf(svc), want);
}

// Per-domain audits reconcile field for field with the full occupancy
// soundness audit: each pod's scoped report is clean, and so is the
// global one.
TEST(DomainSharding, PerDomainAuditsReconcileWithGlobal) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  const auto ft = scale::buildFatTree(p);
  core::ClickIncService svc(ft.topo);
  svc.setDomainSharding(true);
  const place::PlacementOptions opts;
  for (auto& req : disjointPodBatch(ft, opts)) {
    const auto r = svc.submit(std::move(req));
    ASSERT_TRUE(r.ok) << r.error.detail;
  }
  ASSERT_NE(svc.domainIndex(), nullptr);
  for (int pod = 0; pod < svc.domainIndex()->domainCount(); ++pod) {
    const auto rep = svc.verifyDomain(pod);
    EXPECT_TRUE(rep.ok()) << "pod " << pod << ": " << rep.summary();
    EXPECT_GT(rep.checks, 0) << "pod " << pod;
  }
  const auto full = svc.verifyDeployments();
  EXPECT_TRUE(full.ok()) << full.summary();
}

// --- churn harness -------------------------------------------------------

TEST(ChurnDriver, SustainedChurnStaysSoundOnSmallTree) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  const auto ft = scale::buildFatTree(p);
  core::ClickIncService svc(ft.topo);
  svc.setDomainSharding(true);
  svc.setConcurrency(2);
  scale::ChurnParams cp;
  cp.cycles = 240;
  cp.target_live = 24;
  cp.inflight = 4;
  cp.sample_every = 80;
  scale::ChurnDriver driver(&svc, &ft, cp);
  const auto& m = driver.run();
  EXPECT_EQ(m.submits, cp.cycles);
  EXPECT_GT(m.removes, 0);
  EXPECT_EQ(m.verify_violations, 0);
  EXPECT_TRUE(m.final_audit.ok()) << m.final_audit.summary();
  ASSERT_FALSE(m.samples.empty());
  EXPECT_EQ(m.samples.back().cycle, cp.cycles);
  for (const auto& s : m.samples) {
    EXPECT_GE(s.free_ratio_mean, s.free_ratio_min);
    EXPECT_LE(s.verify_violations, 0L);
  }
}

// S2: the churn harness doubles as a failover soak — FaultInjector armed
// on a cadence, every audit (including the final full one) stays clean.
TEST(ChurnDriver, ChurnUnderFaultInjectionAuditsClean) {
  scale::FatTreeParams p;
  p.k = 4;
  p.hosts_per_tor = 2;
  const auto ft = scale::buildFatTree(p);
  core::ClickIncService svc(ft.topo);
  svc.setDomainSharding(true);
  svc.setConcurrency(2);
  scale::ChurnParams cp;
  cp.cycles = 300;
  cp.target_live = 24;
  cp.inflight = 4;
  cp.sample_every = 100;
  cp.audit_every = 75;
  cp.fault_every = 40;
  scale::ChurnDriver driver(&svc, &ft, cp);
  const auto& m = driver.run();
  EXPECT_GT(m.faults_applied, 0);
  EXPECT_GT(m.audits, 1);
  EXPECT_EQ(m.verify_violations, 0)
      << "occupancy/deployment audit found violations under churn+faults";
  EXPECT_TRUE(m.final_audit.ok()) << m.final_audit.summary();
}

}  // namespace
}  // namespace clickinc
