#include <gtest/gtest.h>

#include "emu/emulator.h"
#include "modules/templates.h"
#include "util/strings.h"

namespace clickinc::emu {
namespace {

// Minimal IR program: drop packets whose hdr.value is odd.
std::shared_ptr<ir::IrProgram> dropOdd() {
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "drop_odd";
  prog->addField("hdr.value", 32);
  ir::Instruction bit(ir::Opcode::kAnd, ir::Operand::var("lsb", 1),
                      {ir::Operand::field("hdr.value", 32),
                       ir::Operand::constant(1, 32)});
  prog->instrs.push_back(bit);
  ir::Instruction drop(ir::Opcode::kDrop, ir::Operand::none(), {});
  drop.pred = ir::Operand::var("lsb", 1);
  prog->instrs.push_back(drop);
  return prog;
}

DeploymentEntry entryFor(const std::shared_ptr<ir::IrProgram>& prog,
                         int user, int step_from, int step_to,
                         std::vector<int> idxs = {}) {
  DeploymentEntry e;
  e.user_id = user;
  e.prog = prog;
  if (idxs.empty()) {
    for (std::size_t i = 0; i < prog->instrs.size(); ++i) {
      e.instr_idxs.push_back(static_cast<int>(i));
    }
  } else {
    e.instr_idxs = std::move(idxs);
  }
  e.step_from = step_from;
  e.step_to = step_to;
  return e;
}

class EmuFixture : public ::testing::Test {
 protected:
  EmuFixture()
      : topo_(topo::Topology::chain(
            {device::makeTofino(), device::makeTofino()})),
        emu_(&topo_, 11),
        client_(topo_.findNode("client")),
        server_(topo_.findNode("server")),
        d0_(topo_.findNode("d0")),
        d1_(topo_.findNode("d1")) {}

  PacketResult send(int user, std::uint64_t value, int bytes = 100) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr.value", value);
    return emu_.send(client_, server_, std::move(view), bytes, bytes);
  }

  topo::Topology topo_;
  Emulator emu_;
  int client_, server_, d0_, d1_;
};

TEST_F(EmuFixture, DeliversWithoutDeployments) {
  const auto r = send(-1, 2);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, server_);
  EXPECT_EQ(r.hops, 3);
  EXPECT_DOUBLE_EQ(r.inc_latency_ns, 0.0);
}

TEST_F(EmuFixture, DeployedProgramDropsMatchingTraffic) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  EXPECT_TRUE(send(1, 2).delivered);
  EXPECT_TRUE(send(1, 3).dropped);
  // Dropped at the first device, not the server.
  EXPECT_EQ(send(1, 5).final_node, d0_);
}

TEST_F(EmuFixture, UserFilterSkipsOtherTraffic) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  // User 2's odd packet passes: snippet gated on user id.
  EXPECT_TRUE(send(2, 3).delivered);
}

TEST_F(EmuFixture, StepGateRunsReplicaExactlyOnce) {
  // Same counter program replicated on both devices; the packet must be
  // counted once, by the first device.
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "ctr";
  ir::StateObject s;
  s.name = "ctr";
  s.kind = ir::StateKind::kRegister;
  s.depth = 4;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("n", 32),
      {ir::Operand::constant(0, 8), ir::Operand::constant(1, 32)}, sid));

  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  emu_.deploy(d1_, entryFor(prog, 1, 0, 1));
  send(1, 2);
  send(1, 4);
  EXPECT_EQ(emu_.storeOf(d0_).find("ctr")->regRead(0), 2u);
  EXPECT_EQ(emu_.storeOf(d1_).find("ctr"), nullptr);  // replica skipped
}

TEST_F(EmuFixture, FailedDeviceSkippedReplicaTakesOver) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  emu_.deploy(d1_, entryFor(prog, 1, 0, 1));
  emu_.setFailed(d0_, true);
  const auto r = send(1, 3);
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(r.final_node, d1_);  // the replica executed
  emu_.setFailed(d0_, false);
  EXPECT_EQ(send(1, 5).final_node, d0_);  // back to the primary
}

TEST_F(EmuFixture, ChainedSegmentsCarryParams) {
  // Segment 1 computes lsb on d0; segment 2 drops on d1 using the carried
  // temporary (the Param mechanism).
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1, {0}));
  emu_.deploy(d1_, entryFor(prog, 1, 1, 2, {1}));
  EXPECT_TRUE(send(1, 3).dropped);
  EXPECT_EQ(send(1, 3).final_node, d1_);
  EXPECT_TRUE(send(1, 2).delivered);
}

TEST_F(EmuFixture, LinkBusyAccountsBytes) {
  emu_.resetStats();
  send(-1, 2, /*bytes=*/1000);
  // 1000 bytes over a 100 Gbps link: 80 ns per hop.
  EXPECT_NEAR(emu_.linkBusyNs(client_, d0_), 80.0, 1e-9);
  EXPECT_NEAR(emu_.linkBusyNs(d0_, d1_), 80.0, 1e-9);
  EXPECT_NEAR(emu_.maxLinkBusyNs(), 80.0, 1e-9);
  send(-1, 2, 1000);
  EXPECT_NEAR(emu_.maxLinkBusyNs(), 160.0, 1e-9);
}

TEST_F(EmuFixture, BounceChargesReversePath) {
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "bounce";
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kSendBack, ir::Operand::none(), {}));
  emu_.deploy(d1_, entryFor(prog, 1, 0, 1));
  emu_.resetStats();
  const auto r = send(1, 2, 1000);
  EXPECT_TRUE(r.bounced);
  EXPECT_EQ(r.final_node, client_);
  // Forward client->d0->d1 plus reverse d1->d0->client: 2x each link.
  EXPECT_NEAR(emu_.linkBusyNs(client_, d0_), 160.0, 1e-9);
  EXPECT_NEAR(emu_.linkBusyNs(d0_, d1_), 160.0, 1e-9);
  EXPECT_EQ(r.hops, 4);
}

TEST_F(EmuFixture, SparseDeleteShrinksWireBytesMidPath) {
  // A program that deletes a field and shrinks hdr._len on d0: the second
  // hop is charged at the reduced size.
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "shrink";
  prog->addField("hdr._len", 16);
  ir::Instruction dec(ir::Opcode::kSub, ir::Operand::field("hdr._len", 16),
                      {ir::Operand::field("hdr._len", 16),
                       ir::Operand::constant(500, 16)});
  prog->instrs.push_back(dec);
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  emu_.resetStats();
  const auto r = send(1, 2, 1000);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.wire_bytes_out, 500);
  EXPECT_NEAR(emu_.linkBusyNs(client_, d0_), 80.0, 1e-9);  // full size
  EXPECT_NEAR(emu_.linkBusyNs(d0_, d1_), 40.0, 1e-9);      // shrunk
}

TEST_F(EmuFixture, StatsAccumulateAndReset) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  send(1, 2);
  send(1, 3);
  const auto& st = emu_.stats();
  EXPECT_EQ(st.packets_sent, 2u);
  EXPECT_EQ(st.packets_delivered, 1u);
  EXPECT_EQ(st.packets_dropped, 1u);
  EXPECT_GT(st.avgIncLatencyNs(), 0.0);
  emu_.resetStats();
  EXPECT_EQ(emu_.stats().packets_sent, 0u);
  EXPECT_DOUBLE_EQ(emu_.maxLinkBusyNs(), 0.0);
}

TEST_F(EmuFixture, UndeployStopsProcessing) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  EXPECT_TRUE(send(1, 3).dropped);
  emu_.undeploy(d0_, 1);
  EXPECT_TRUE(send(1, 3).delivered);
}

// --- compiled-plan execution path (exec_plan fast path) ---

// Stateful aggregator: ctr[0] += hdr.value, then drop every 3rd packet.
std::shared_ptr<ir::IrProgram> aggAndDropThird() {
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "agg3";
  prog->addField("hdr.value", 32);
  ir::StateObject s;
  s.name = "acc";
  s.kind = ir::StateKind::kRegister;
  s.depth = 2;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("sum", 32),
      {ir::Operand::constant(0, 8), ir::Operand::field("hdr.value", 32)},
      sid));
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("n", 32),
      {ir::Operand::constant(1, 8), ir::Operand::constant(1, 32)}, sid));
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kMod, ir::Operand::var("m", 32),
                      {ir::Operand::var("n", 32),
                       ir::Operand::constant(3, 32)}));
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kCmpEq, ir::Operand::var("third", 1),
                      {ir::Operand::var("m", 32),
                       ir::Operand::constant(0, 32)}));
  ir::Instruction drop(ir::Opcode::kDrop, ir::Operand::none(), {});
  drop.pred = ir::Operand::var("third", 1);
  prog->instrs.push_back(drop);
  return prog;
}

TEST(EmuExecPlan, CompiledPathMatchesReferenceInterpreter) {
  auto run = [](bool reference) {
    topo::Topology topo = topo::Topology::chain(
        {device::makeTofino(), device::makeTofino()});
    Emulator emu(&topo, 11);
    emu.setReferenceInterpreter(reference);
    auto prog = aggAndDropThird();
    emu.deploy(topo.findNode("d0"), entryFor(prog, 1, 0, 1));
    const int client = topo.findNode("client");
    const int server = topo.findNode("server");

    std::vector<PacketResult> results;
    for (int i = 0; i < 20; ++i) {
      ir::PacketView view;
      view.user_id = 1;
      view.setField("hdr.value", static_cast<std::uint64_t>(i * 7 + 1));
      results.push_back(
          emu.send(client, server, std::move(view), 100, 100));
    }
    std::uint64_t sum = emu.storeOf(topo.findNode("d0"))
                            .find("acc")
                            ->regRead(0);
    return std::make_tuple(std::move(results), sum, emu.stats());
  };

  auto [ref_results, ref_sum, ref_stats] = run(true);
  auto [fast_results, fast_sum, fast_stats] = run(false);

  EXPECT_EQ(ref_sum, fast_sum);
  EXPECT_EQ(ref_stats.packets_dropped, fast_stats.packets_dropped);
  EXPECT_EQ(ref_stats.packets_delivered, fast_stats.packets_delivered);
  EXPECT_DOUBLE_EQ(ref_stats.total_latency_ns, fast_stats.total_latency_ns);
  ASSERT_EQ(ref_results.size(), fast_results.size());
  for (std::size_t i = 0; i < ref_results.size(); ++i) {
    EXPECT_EQ(ref_results[i].dropped, fast_results[i].dropped) << i;
    EXPECT_EQ(ref_results[i].final_node, fast_results[i].final_node) << i;
    EXPECT_EQ(ref_results[i].view.params, fast_results[i].view.params) << i;
    EXPECT_EQ(ref_results[i].view.fields, fast_results[i].view.fields) << i;
    EXPECT_DOUBLE_EQ(ref_results[i].latency_ns, fast_results[i].latency_ns)
        << i;
  }
}

TEST_F(EmuFixture, SendBurstMatchesSequentialSends) {
  auto prog = aggAndDropThird();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));

  // Sequential sends on this emulator...
  std::vector<PacketResult> seq;
  for (int i = 0; i < 15; ++i) {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", static_cast<std::uint64_t>(i + 1));
    seq.push_back(emu_.send(client_, server_, std::move(view), 200, 200));
  }
  const auto seq_stats = emu_.stats();
  const double seq_busy = emu_.maxLinkBusyNs();
  const std::uint64_t seq_sum =
      emu_.storeOf(d0_).find("acc")->regRead(0);

  // ...must match one burst on a fresh emulator over the same topology.
  Emulator burst_emu(&topo_, 11);
  burst_emu.deploy(d0_, entryFor(prog, 1, 0, 1));
  std::vector<ir::PacketView> views;
  for (int i = 0; i < 15; ++i) {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", static_cast<std::uint64_t>(i + 1));
    views.push_back(std::move(view));
  }
  const auto burst =
      burst_emu.sendBurst(client_, server_, std::move(views), 200, 200);

  ASSERT_EQ(burst.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].delivered, burst[i].delivered) << i;
    EXPECT_EQ(seq[i].dropped, burst[i].dropped) << i;
    EXPECT_EQ(seq[i].final_node, burst[i].final_node) << i;
    EXPECT_EQ(seq[i].hops, burst[i].hops) << i;
    EXPECT_DOUBLE_EQ(seq[i].latency_ns, burst[i].latency_ns) << i;
    EXPECT_EQ(seq[i].view.params, burst[i].view.params) << i;
    EXPECT_EQ(seq[i].view.fields, burst[i].view.fields) << i;
  }
  EXPECT_EQ(burst_emu.stats().packets_sent, seq_stats.packets_sent);
  EXPECT_EQ(burst_emu.stats().packets_dropped, seq_stats.packets_dropped);
  EXPECT_EQ(burst_emu.stats().packets_delivered,
            seq_stats.packets_delivered);
  EXPECT_DOUBLE_EQ(burst_emu.maxLinkBusyNs(), seq_busy);
  EXPECT_EQ(burst_emu.storeOf(d0_).find("acc")->regRead(0), seq_sum);
}

TEST_F(EmuFixture, SendBurstPacketMajorOnMultiEntryDevice) {
  // Two step-gated segments of one program on the SAME device sharing a
  // register: segment A accumulates acc += hdr.value, segment B reads acc
  // into a param. Hop-major bursts must still run each packet through
  // both segments before the next packet (packet-major per device), or
  // later packets' writes leak into earlier packets' reads.
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "accread";
  prog->addField("hdr.value", 32);
  ir::StateObject s;
  s.name = "acc";
  s.kind = ir::StateKind::kRegister;
  s.depth = 1;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("a", 32),
      {ir::Operand::constant(0, 8), ir::Operand::field("hdr.value", 32)},
      sid));
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kRegRead, ir::Operand::var("out", 32),
                      {ir::Operand::constant(0, 8)}, sid));

  emu_.deploy(d0_, entryFor(prog, 1, 0, 1, {0}));
  emu_.deploy(d0_, entryFor(prog, 1, 1, 2, {1}));
  std::vector<PacketResult> seq;
  for (std::uint64_t v : {10ull, 5ull}) {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", v);
    seq.push_back(emu_.send(client_, server_, std::move(view), 100, 100));
  }
  EXPECT_EQ(seq[0].view.params.at("out"), 10u);
  EXPECT_EQ(seq[1].view.params.at("out"), 15u);

  Emulator burst_emu(&topo_, 11);
  burst_emu.deploy(d0_, entryFor(prog, 1, 0, 1, {0}));
  burst_emu.deploy(d0_, entryFor(prog, 1, 1, 2, {1}));
  std::vector<ir::PacketView> views;
  for (std::uint64_t v : {10ull, 5ull}) {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", v);
    views.push_back(std::move(view));
  }
  const auto burst =
      burst_emu.sendBurst(client_, server_, std::move(views), 100, 100);
  ASSERT_EQ(burst.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].view.params, burst[i].view.params) << i;
    EXPECT_DOUBLE_EQ(seq[i].latency_ns, burst[i].latency_ns) << i;
  }
}

TEST_F(EmuFixture, SendBurstBouncesAndDropsLikeSend) {
  // Bounce on d1, drop odd on d0: exercises mid-burst early exits.
  auto dropper = dropOdd();
  auto bounce = std::make_shared<ir::IrProgram>();
  bounce->name = "bounce";
  bounce->instrs.push_back(
      ir::Instruction(ir::Opcode::kSendBack, ir::Operand::none(), {}));
  emu_.deploy(d0_, entryFor(dropper, 1, 0, 1));
  emu_.deploy(d1_, entryFor(bounce, 1, 1, 2));

  std::vector<ir::PacketView> views;
  for (int i = 0; i < 6; ++i) {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", static_cast<std::uint64_t>(i));
    views.push_back(std::move(view));
  }
  const auto r = emu_.sendBurst(client_, server_, std::move(views), 100, 100);
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_TRUE(r[i].dropped) << i;
      EXPECT_EQ(r[i].final_node, d0_) << i;
    } else {
      EXPECT_TRUE(r[i].bounced) << i;
      EXPECT_EQ(r[i].final_node, client_) << i;
      EXPECT_EQ(r[i].hops, 4) << i;
    }
  }
  EXPECT_EQ(emu_.stats().packets_dropped, 3u);
  EXPECT_EQ(emu_.stats().packets_bounced, 3u);
}

TEST_F(EmuFixture, PlanCacheSharedAcrossReplicaDeployments) {
  auto prog = dropOdd();
  emu_.deploy(d0_, entryFor(prog, 1, 0, 1));
  emu_.deploy(d1_, entryFor(prog, 1, 0, 1));  // replica: same segment
  const auto& stats = emu_.planCache().stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(emu_.planCache().size(), 1u);
}

TEST(EmuBypass, AcceleratorProcessesAsPartOfSwitchHop) {
  // A switch with an attached accelerator: snippets on the accel run when
  // the packet traverses the switch.
  topo::Topology t;
  topo::Node h1;
  h1.name = "h1";
  h1.kind = topo::NodeKind::kHost;
  const int a = t.addNode(h1);
  topo::Node sw;
  sw.name = "sw";
  sw.kind = topo::NodeKind::kSwitch;
  sw.programmable = true;
  sw.model = device::makeTrident4();
  const int s = t.addNode(sw);
  topo::Node bf;
  bf.name = "bf";
  bf.kind = topo::NodeKind::kAccel;
  bf.programmable = true;
  bf.model = device::makeFpga();
  const int acc = t.addNode(bf);
  t.node(s).attached_accel = acc;
  t.addLink(s, acc);
  topo::Node h2;
  h2.name = "h2";
  h2.kind = topo::NodeKind::kHost;
  const int b = t.addNode(h2);
  t.addLink(a, s);
  t.addLink(s, b);

  Emulator emu(&t, 3);
  auto prog = dropOdd();
  emu.deploy(acc, entryFor(prog, 1, 0, 1));
  ir::PacketView view;
  view.user_id = 1;
  view.setField("hdr.value", 3);
  const auto r = emu.send(a, b, std::move(view), 64, 64);
  EXPECT_TRUE(r.dropped);  // the bypass card's snippet fired
}

}  // namespace
}  // namespace clickinc::emu
