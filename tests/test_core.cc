#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "backend/codegen.h"
#include "core/service.h"
#include "util/strings.h"

namespace clickinc::core {
namespace {

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture() : svc_(topo::Topology::paperEmulation()) {}

  topo::TrafficSpec trafficFor(std::vector<std::string> srcs,
                               const std::string& dst) {
    topo::TrafficSpec spec;
    for (const auto& s : srcs) {
      spec.sources.push_back({svc_.topology().findNode(s), 10.0});
    }
    spec.dst_host = svc_.topology().findNode(dst);
    return spec;
  }

  ClickIncService svc_;
};

TEST_F(ServiceFixture, SubmitTemplateEndToEnd) {
  const auto r = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  EXPECT_GT(r.user_id, 0);
  EXPECT_FALSE(r.impact.affected_devices.empty());
  EXPECT_FALSE(r.impact.affected_pods.empty());
}

TEST_F(ServiceFixture, DistributedExecutionMatchesSingleDeviceSemantics) {
  const auto r = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  const int src = svc_.topology().findNode("pod0a");
  const int dst = svc_.topology().findNode("pod2b");

  // Reference single-device execution.
  const auto& prog = *svc_.deployments().at(r.user_id).prog;
  ir::StateStore ref_store;
  Rng ref_rng(1);
  ir::Interpreter ref(&ref_store, &ref_rng);

  for (int i = 0; i < 300; ++i) {
    const std::uint64_t value = (i * 13) % 37;
    ir::PacketView ref_view;
    ref_view.setField("hdr.value", value);
    ref.runAll(prog, ref_view);

    ir::PacketView net_view;
    net_view.user_id = r.user_id;
    net_view.setField("hdr._uid", static_cast<std::uint64_t>(r.user_id));
    net_view.setField("hdr.value", value);
    const auto pkt = svc_.emulator().send(src, dst, std::move(net_view), 64, 4);
    const bool net_dropped = pkt.dropped;
    const bool ref_dropped = ref_view.verdict == ir::Verdict::kDrop;
    ASSERT_EQ(net_dropped, ref_dropped) << "packet " << i;
  }
}

TEST_F(ServiceFixture, ExecPlanCacheThreadedThroughEmulator) {
  // The service's plan cache IS the emulator's cache (threaded the way
  // the placement arena is), and deploying a program compiles its
  // segments through it. Replicated segments (multi-path common prefix,
  // §6 replicas) are content-identical and must hit instead of
  // recompiling. Note cross-user sharing is deliberately absent here:
  // exec-plan fingerprints are name-sensitive (state/Param names key the
  // runtime stores), unlike the placement memo's name-blind segments.
  EXPECT_EQ(&svc_.execPlanCache(), &svc_.emulator().planCache());

  const auto r = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  const auto stats = svc_.execPlanCache().stats();
  EXPECT_GT(stats.compiles, 0u);
  EXPECT_EQ(stats.probes, stats.hits + stats.compiles);

  // Redeploying the same program's snippets (e.g. a replica on another
  // device) reuses cached plans.
  const auto& deployed = svc_.deployments().at(r.user_id);
  const auto before = svc_.execPlanCache().stats();
  for (const auto& a : deployed.plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (p.instr_idxs.empty()) continue;
      emu::DeploymentEntry entry;
      entry.user_id = r.user_id;
      entry.prog = deployed.prog;
      entry.instr_idxs = p.instr_idxs;
      entry.step_from = 90;  // parked step range: never executed
      entry.step_to = 91;
      svc_.emulator().deploy(dev, std::move(entry));
    }
  }
  const auto after = svc_.execPlanCache().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.compiles, before.compiles);
}

TEST_F(ServiceFixture, MultiUserIsolationOverTheNetwork) {
  const auto a = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  const auto b = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(a.ok) << a.error.message();
  ASSERT_TRUE(b.ok) << b.error.message();
  const int src = svc_.topology().findNode("pod0a");
  const int dst = svc_.topology().findNode("pod2b");
  auto send = [&](int user, std::uint64_t value) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr._uid", static_cast<std::uint64_t>(user));
    view.setField("hdr.value", value);
    return svc_.emulator().send(src, dst, std::move(view), 64, 4);
  };
  EXPECT_TRUE(send(a.user_id, 7).delivered);
  EXPECT_TRUE(send(b.user_id, 7).delivered);  // b's first sight of 7
  EXPECT_TRUE(send(a.user_id, 7).dropped);
  EXPECT_TRUE(send(b.user_id, 7).dropped);
}

TEST_F(ServiceFixture, RemoveFreesResourcesForNextProgram) {
  const auto r1 = svc_.submit(SubmitRequest::fromTemplate(
      "MLAgg",
      {{"NumAgg", 2048}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}},
      trafficFor({"pod0a", "pod1a"}, "pod2b")));
  ASSERT_TRUE(r1.ok) << r1.error.message();
  const double after_add = svc_.occupancy().remainingRatio();
  const auto removed = svc_.remove(r1.user_id);
  ASSERT_TRUE(removed.ok) << removed.error.message();
  EXPECT_FALSE(removed.impact.affected_devices.empty());
  EXPECT_GT(svc_.occupancy().remainingRatio(), after_add);
}

TEST_F(ServiceFixture, StepGateSkipsFailedReplicaDevice) {
  const auto r = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  const int src = svc_.topology().findNode("pod0a");
  const int dst = svc_.topology().findNode("pod2b");
  auto send = [&](std::uint64_t value) {
    ir::PacketView view;
    view.user_id = r.user_id;
    view.setField("hdr._uid", static_cast<std::uint64_t>(r.user_id));
    view.setField("hdr.value", value);
    return svc_.emulator().send(src, dst, std::move(view), 64, 4);
  };
  // A replicated EC has > 1 device; failing one of a replicated pair must
  // not break the program (the replica executes). Find a replicated
  // assignment.
  int replicated_dev = -1;
  for (const auto& a : r.plan.assignments) {
    if (a.on_device.size() > 1) {
      replicated_dev = a.on_device.begin()->first;
      break;
    }
  }
  send(5);
  if (replicated_dev >= 0) {
    svc_.emulator().setFailed(replicated_dev, true);
    // Traffic still processed: the duplicate is still dropped somewhere
    // (another EC member or the surviving chain).
    const auto pkt = send(5);
    EXPECT_TRUE(pkt.dropped || pkt.delivered);
    svc_.emulator().setFailed(replicated_dev, false);
  }
}

// --- apps over the service ---

TEST(Apps, DqaccFiltersDuplicatesInNetwork) {
  ClickIncService svc(topo::Topology::paperEmulation());
  apps::DqaccConfig cfg;
  cfg.client_host = svc.topology().findNode("pod0a");
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.stream_len = 1000;
  cfg.distinct_values = 100;
  const auto r = apps::runDqacc(svc, cfg);
  ASSERT_TRUE(r.deployed) << r.failure;
  EXPECT_GT(r.filtered, 0u);
  EXPECT_GT(r.dedup_ratio, 0.8);  // most duplicates are caught
  EXPECT_GE(r.forwarded, cfg.distinct_values);  // all distinct survive
}

TEST(Apps, KvsCachesHotKeys) {
  ClickIncService svc(topo::Topology::paperEmulation());
  apps::KvsConfig cfg;
  cfg.client_hosts = {svc.topology().findNode("pod0a"),
                      svc.topology().findNode("pod1a")};
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.queries = 1500;
  cfg.keyspace = 512;
  cfg.zipf = 1.2;
  cfg.cache_size = 64;
  const auto r = apps::runKvs(svc, cfg);
  ASSERT_TRUE(r.deployed) << r.failure;
  EXPECT_GT(r.hit_ratio, 0.2);  // hot keys get cached and hit
  EXPECT_GT(r.hits, 0u);
  // Cache hits come back faster than full round trips to the server.
  EXPECT_LT(r.avg_hit_latency_ns, r.avg_miss_latency_ns);
}

TEST(Apps, MlaggAggregatesInNetwork) {
  ClickIncService svc(topo::Topology::paperEmulation());
  apps::MlaggConfig cfg;
  cfg.worker_hosts = {svc.topology().findNode("pod0a"),
                      svc.topology().findNode("pod0b")};
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.rounds = 40;
  cfg.dim = 8;
  cfg.sparsity = 0.0;
  const auto r = apps::runMlagg(svc, cfg);
  ASSERT_TRUE(r.deployed) << r.failure;
  EXPECT_GT(r.rounds_done, 0u);
  EXPECT_GT(r.inc_aggregated, 0u);  // aggregation happened in the network
}

TEST(Apps, MlaggWithoutIncStillCompletesAtServer) {
  ClickIncService svc(topo::Topology::paperEmulation());
  apps::MlaggConfig cfg;
  cfg.worker_hosts = {svc.topology().findNode("pod0a"),
                      svc.topology().findNode("pod0b")};
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.rounds = 20;
  cfg.dim = 8;
  cfg.use_mlagg = false;
  cfg.use_sparse = false;
  const auto r = apps::runMlagg(svc, cfg);
  ASSERT_TRUE(r.deployed);
  EXPECT_EQ(r.inc_aggregated, 0u);
  EXPECT_EQ(r.rounds_done, 20u);  // server aggregates everything
}

TEST(Apps, SparseEliminationReducesServerLoad) {
  auto run = [](bool sparse) {
    ClickIncService svc(topo::Topology::paperEmulation());
    apps::MlaggConfig cfg;
    cfg.worker_hosts = {svc.topology().findNode("pod0a"),
                        svc.topology().findNode("pod0b")};
    cfg.server_host = svc.topology().findNode("pod2b");
    cfg.rounds = 30;
    cfg.dim = 16;
    cfg.sparsity = 0.75;
    cfg.use_mlagg = false;
    cfg.use_sparse = sparse;
    return apps::runMlagg(svc, cfg);
  };
  const auto with = run(true);
  const auto without = run(false);
  ASSERT_TRUE(with.deployed) << with.failure;
  ASSERT_TRUE(without.deployed) << without.failure;
  EXPECT_LT(with.server_link_bytes, without.server_link_bytes * 0.8);
}

// --- backend codegen smoke-through-service ---

TEST_F(ServiceFixture, GeneratesTargetCodeForDeployedDevice) {
  const auto r = svc_.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor({"pod0a"}, "pod2b")));
  ASSERT_TRUE(r.ok) << r.error.message();
  const int dev = *r.impact.affected_devices.begin();
  auto& dp = svc_.deviceProgram(dev);
  const auto p4 = backend::generate(backend::Target::kP4_16,
                                    dp.executable(), &dp.parser());
  EXPECT_NE(p4.find("control Ingress"), std::string::npos);
  EXPECT_NE(p4.find("Register"), std::string::npos);
  const auto microc =
      backend::generate(backend::Target::kMicroC, dp.executable(), nullptr);
  EXPECT_NE(microc.find("pif_plugin"), std::string::npos);
  EXPECT_GT(backend::generatedLoc(backend::Target::kP4_16, dp.executable()),
            50);
}

}  // namespace
}  // namespace clickinc::core
