// Property-based test sweeps (parameterized gtest) over the DESIGN.md
// invariants: distributed-execution equivalence at every legal cut,
// placement soundness across templates and traffic patterns, block-DAG
// structural properties under varying thresholds, and interpreter
// arithmetic width laws.
#include <gtest/gtest.h>

#include <set>

#include "core/service.h"
#include "device/validate.h"
#include "ir/interp.h"
#include "modules/templates.h"
#include "place/blockdag.h"
#include "place/intradevice.h"
#include "place/treedp.h"
#include "topo/ec.h"
#include "util/bits.h"
#include "util/strings.h"

namespace clickinc {
namespace {

modules::ModuleLibrary& lib() {
  static modules::ModuleLibrary instance;
  return instance;
}

ir::IrProgram templateProgram(const std::string& name) {
  if (name == "KVS") {
    return lib().compileTemplate(
        "KVS", "p",
        {{"CacheSize", 128}, {"ValDim", 2}, {"TH", 4}});
  }
  if (name == "MLAgg") {
    return lib().compileTemplate(
        "MLAgg", "p",
        {{"NumAgg", 64}, {"Dim", 4}, {"NumWorker", 2}});
  }
  return lib().compileTemplate("DQAcc", "p",
                               {{"CacheDepth", 64}, {"CacheLen", 2}});
}

// Drives one packet with a workload-appropriate header.
ir::PacketView packetFor(const std::string& tmpl, Rng* rng) {
  ir::PacketView pkt;
  if (tmpl == "KVS") {
    pkt.setField("hdr.op", 1 + rng->nextBelow(3));
    pkt.setField("hdr.key", rng->nextBelow(64));
    pkt.setField("hdr.val.0", rng->nextBelow(1000));
    pkt.setField("hdr.val.1", rng->nextBelow(1000));
  } else if (tmpl == "MLAgg") {
    pkt.setField("hdr.op", 1);
    pkt.setField("hdr.seq", rng->nextBelow(16));
    pkt.setField("hdr.bitmap", 1ull << rng->nextBelow(2));
    for (int i = 0; i < 4; ++i) {
      pkt.setField(cat("hdr.data.", i), rng->nextBelow(100));
    }
  } else {
    pkt.setField("hdr.value", 1 + rng->nextBelow(32));
  }
  return pkt;
}

// --- Property 1: distributed execution == single-device execution -------
//
// For every block boundary of every template, running the prefix on one
// "device" and the suffix on another (params carried in between) must
// produce the same verdicts and header contents as single-device runs.

class CutEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CutEquivalence, PrefixSuffixMatchesWhole) {
  const auto [tmpl, cut_index] = GetParam();
  const auto prog = templateProgram(tmpl);
  const auto dag = place::BlockDag::build(prog);
  if (cut_index >= dag.size()) GTEST_SKIP() << "fewer blocks than cut";

  const auto prefix = dag.instrsOf(0, cut_index);
  const auto suffix = dag.instrsOf(cut_index, dag.size());

  Rng traffic_a(123), traffic_b(123);
  ir::StateStore whole_store, store_a, store_b;
  Rng rng_w(5), rng_a(5), rng_b(5);
  ir::Interpreter whole(&whole_store, &rng_w);
  ir::Interpreter dev_a(&store_a, &rng_a);
  ir::Interpreter dev_b(&store_b, &rng_b);

  auto gather = [&](const std::vector<int>& idxs) {
    std::vector<ir::Instruction> out;
    for (int i : idxs) {
      out.push_back(prog.instrs[static_cast<std::size_t>(i)]);
    }
    return out;
  };
  const auto pre = gather(prefix);
  const auto suf = gather(suffix);

  for (int round = 0; round < 120; ++round) {
    auto p1 = packetFor(tmpl, &traffic_a);
    auto p2 = packetFor(tmpl, &traffic_b);
    whole.runAll(prog, p1);
    dev_a.run(prog, std::span<const ir::Instruction>(pre), p2);
    dev_b.run(prog, std::span<const ir::Instruction>(suf), p2);
    ASSERT_EQ(p1.verdict, p2.verdict) << tmpl << " round " << round;
    ASSERT_EQ(p1.mirrored, p2.mirrored);
    for (const auto& [name, value] : p1.fields) {
      ASSERT_EQ(value, p2.field(name)) << name << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesAllCuts, CutEquivalence,
    ::testing::Combine(::testing::Values("KVS", "MLAgg", "DQAcc"),
                       ::testing::Values(1, 2, 3, 5, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_cut" +
             std::to_string(std::get<1>(info.param));
    });

// --- Property 2: every DP placement validates on every device -----------

struct PlacementCase {
  std::string tmpl;
  std::vector<std::string> sources;
  std::string dst;
};

class PlacementSoundness : public ::testing::TestWithParam<PlacementCase> {};

TEST_P(PlacementSoundness, EmittedPlansSatisfyChipConstraints) {
  const auto& param = GetParam();
  const auto topo = topo::Topology::paperEmulation();
  topo::TrafficSpec spec;
  for (const auto& s : param.sources) {
    spec.sources.push_back({topo.findNode(s), 10.0});
  }
  spec.dst_host = topo.findNode(param.dst);

  const auto prog = templateProgram(param.tmpl);
  const auto dag = place::BlockDag::build(prog);
  const auto tree = buildEcTree(topo, spec);
  place::OccupancyMap occ(&topo);
  const auto plan = placeProgram(dag, tree, topo, occ);
  ASSERT_TRUE(plan.feasible) << plan.failure;

  std::set<int> placed;
  int root_path_count = 0;
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (p.instr_idxs.empty()) continue;
      EXPECT_EQ(device::validatePlacement(topo.node(dev).model, prog,
                                          p.instr_idxs, p.stage_of),
                "")
          << topo.node(dev).name;
      for (int i : p.instr_idxs) placed.insert(i);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      if (p.instr_idxs.empty()) continue;
      EXPECT_EQ(device::validatePlacement(topo.node(dev).model, prog,
                                          p.instr_idxs, p.stage_of),
                "")
          << topo.node(dev).name;
      for (int i : p.instr_idxs) placed.insert(i);
    }
    root_path_count = std::max(root_path_count, a.to_block);
  }
  // Full program coverage along the spine.
  EXPECT_EQ(root_path_count, dag.size());
  EXPECT_EQ(placed.size(), prog.instrs.size());
}

INSTANTIATE_TEST_SUITE_P(
    TemplatesByTraffic, PlacementSoundness,
    ::testing::Values(
        PlacementCase{"DQAcc", {"pod0a"}, "pod2b"},
        PlacementCase{"DQAcc", {"pod0a", "pod1a"}, "pod2a"},
        PlacementCase{"MLAgg", {"pod0a", "pod0b"}, "pod2b"},
        PlacementCase{"MLAgg", {"pod0a", "pod1b"}, "pod2a"},
        PlacementCase{"KVS", {"pod0a"}, "pod2b"},
        PlacementCase{"KVS", {"pod0b", "pod1a"}, "pod2b"}),
    [](const auto& info) {
      return info.param.tmpl + "_" +
             std::to_string(info.param.sources.size()) + "src_" +
             std::to_string(info.index);
    });

// --- Property 3: block DAG structure under threshold sweeps -------------

class BlockDagProperties
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BlockDagProperties, PartitionLegalityHolds) {
  const auto [tmpl, threshold] = GetParam();
  const auto prog = templateProgram(tmpl);
  place::BlockDagOptions opts;
  opts.max_block_instrs = threshold;
  const auto dag = place::BlockDag::build(prog, opts);

  // Union of blocks == program, no duplicates.
  std::set<int> covered;
  for (const auto& b : dag.blocks()) {
    for (int i : b.instrs) {
      EXPECT_TRUE(covered.insert(i).second);
    }
  }
  EXPECT_EQ(covered.size(), prog.instrs.size());

  // Deps point backwards in the linearization (App. B.1 legality).
  for (const auto& b : dag.blocks()) {
    for (int d : b.deps) EXPECT_LT(d, b.id);
  }

  // State-sharing instructions stay together regardless of threshold.
  std::map<int, std::set<int>> blocks_of_state;
  for (const auto& b : dag.blocks()) {
    for (int i : b.instrs) {
      const auto& ins = prog.instrs[static_cast<std::size_t>(i)];
      if (ins.state_id >= 0 &&
          prog.states[static_cast<std::size_t>(ins.state_id)].stateful) {
        blocks_of_state[ins.state_id].insert(b.id);
      }
    }
  }
  for (const auto& [sid, bset] : blocks_of_state) {
    EXPECT_EQ(bset.size(), 1u) << "state " << sid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdSweep, BlockDagProperties,
    ::testing::Combine(::testing::Values("KVS", "MLAgg", "DQAcc"),
                       ::testing::Values(1, 2, 4, 8, 16, 64)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// --- Property 4: interpreter arithmetic respects operand widths ---------

class WidthLaws : public ::testing::TestWithParam<int> {};

TEST_P(WidthLaws, AdditionWrapsAtWidth) {
  const int width = GetParam();
  ir::IrProgram p;
  p.instrs.push_back(ir::Instruction(
      ir::Opcode::kAdd, ir::Operand::var("x", width),
      {ir::Operand::constant(lowMask(width), 64),
       ir::Operand::constant(1, width)}));
  p.instrs.push_back(ir::Instruction(
      ir::Opcode::kSub, ir::Operand::var("y", width),
      {ir::Operand::constant(0, width), ir::Operand::constant(1, width)}));
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pkt;
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.params.at("x"), 0u) << "max + 1 wraps to 0 at " << width;
  EXPECT_EQ(pkt.params.at("y"), lowMask(width)) << "0 - 1 wraps to max";
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthLaws,
                         ::testing::Values(1, 8, 16, 24, 32, 48, 63),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// --- Property 5: isolation — two instances never interfere --------------

class IsolationSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(IsolationSweep, TwinInstancesBehaveIdenticallyButSeparately) {
  const std::string tmpl = GetParam();
  // Instance A alone vs instance A sharing a store with instance B: A's
  // observable behaviour must be identical (memory isolation).
  auto prog_a = lib().compileTemplate(
      tmpl, "iso_a",
      tmpl == "KVS"
          ? std::map<std::string, std::uint64_t>{{"CacheSize", 64},
                                                 {"ValDim", 2},
                                                 {"TH", 3}}
          : (tmpl == "MLAgg"
                 ? std::map<std::string, std::uint64_t>{{"NumAgg", 32},
                                                        {"Dim", 4},
                                                        {"NumWorker", 2}}
                 : std::map<std::string, std::uint64_t>{{"CacheDepth", 32},
                                                        {"CacheLen", 2}}));
  auto prog_b = lib().compileTemplate(
      tmpl, "iso_b",
      tmpl == "DQAcc"
          ? std::map<std::string, std::uint64_t>{{"CacheDepth", 32},
                                                 {"CacheLen", 2}}
          : std::map<std::string, std::uint64_t>{});

  ir::StateStore solo_store, shared_store;
  Rng r1(9), r2(9), traffic1(44), traffic2(44), noise(91);
  ir::Interpreter solo(&solo_store, &r1);
  ir::Interpreter shared(&shared_store, &r2);

  for (int round = 0; round < 150; ++round) {
    auto p1 = packetFor(tmpl, &traffic1);
    auto p2 = packetFor(tmpl, &traffic2);
    solo.runAll(prog_a, p1);
    // Interleave instance B noise into the shared store.
    auto pb = packetFor(tmpl, &noise);
    shared.runAll(prog_b, pb);
    shared.runAll(prog_a, p2);
    ASSERT_EQ(p1.verdict, p2.verdict) << tmpl << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, IsolationSweep,
                         ::testing::Values("KVS", "MLAgg", "DQAcc"));

// --- Property 6: every committed plan passes the static verifier --------
//
// The plan verifier (verify/verifier.h) re-derives occupancy claims,
// replica lists, state-slot ownership, and fused execution plans
// independently of the pipeline that produced them. Whatever the
// concurrency of the pipeline and whatever the failure schedule, real
// output must verify clean — a violation here is a pipeline bug, not a
// tenant error.

class VerifierProperties : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<core::SubmitRequest> mixedBatch(
      const core::ClickIncService& svc) {
    auto traffic = [&](const std::vector<std::string>& srcs,
                       const std::string& dst) {
      topo::TrafficSpec spec;
      for (const auto& s : srcs) {
        spec.sources.push_back({svc.topology().findNode(s), 10.0});
      }
      spec.dst_host = svc.topology().findNode(dst);
      return spec;
    };
    std::vector<core::SubmitRequest> reqs;
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "KVS", {{"CacheSize", 256}, {"ValDim", 4}, {"TH", 32}},
        traffic({"pod0a", "pod0b"}, "pod2b")));
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "MLAgg",
        {{"NumAgg", 256}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}},
        traffic({"pod0a", "pod1a"}, "pod2b")));
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "DQAcc", {{"CacheDepth", 128}, {"CacheLen", 2}},
        traffic({"pod1b"}, "pod2a")));
    reqs.push_back(core::SubmitRequest::fromTemplate(
        "KVS", {{"CacheSize", 128}, {"ValDim", 4}, {"TH", 16}},
        traffic({"pod1a"}, "pod0b")));
    return reqs;
  }
};

TEST_P(VerifierProperties, SubmitAllPlansVerifyCleanAtEveryConcurrency) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  svc.setConcurrency(GetParam());
  const auto results = svc.submitAll(mixedBatch(svc));
  int deployed = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error.message();
    EXPECT_TRUE(r.verify.ok()) << r.verify.summary();
    EXPECT_GT(r.verify.checks, 0);
    ++deployed;
  }
  ASSERT_EQ(deployed, 4);
  const auto audit = svc.verifyDeployments();
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_P(VerifierProperties, FailoverReplacementsVerifyCleanUnderChurn) {
  core::ClickIncService svc(topo::Topology::paperEmulation());
  svc.setConcurrency(GetParam());
  for (auto& req : VerifierProperties::mixedBatch(svc)) {
    ASSERT_TRUE(svc.submit(std::move(req)).ok);
  }
  svc.armFaultInjector(/*seed=*/GetParam() * 1000 + 7);
  int replaced = 0;
  for (int step = 0; step < 8; ++step) {
    const auto report = svc.stepFault();
    EXPECT_TRUE(report.verify.ok())
        << "step " << step << ": " << report.verify.summary();
    replaced += report.replacedCount();
  }
  // The schedule must actually have exercised re-placement.
  EXPECT_GT(replaced, 0);
  const auto audit = svc.verifyDeployments();
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

INSTANTIATE_TEST_SUITE_P(Threads, VerifierProperties,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace clickinc
