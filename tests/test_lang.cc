#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/interp.h"
#include "lang/ast.h"
#include "lang/lower.h"
#include "lang/token.h"
#include "util/error.h"
#include "util/strings.h"

namespace clickinc::lang {
namespace {

using clickinc::Rng;

// --- lexer ---

TEST(Lexer, TokenizesNamesOpsAndInts) {
  auto toks = tokenize("x = a + 0x10\n");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokKind::kName);
  EXPECT_TRUE(toks[1].isOp("="));
  EXPECT_EQ(toks[2].kind, TokKind::kName);
  EXPECT_TRUE(toks[3].isOp("+"));
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
  EXPECT_EQ(toks[4].int_value, 16u);
}

TEST(Lexer, IndentDedent) {
  auto toks = tokenize("if a:\n    b = 1\nc = 2\n");
  int indents = 0, dedents = 0;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kIndent) ++indents;
    if (t.kind == TokKind::kDedent) ++dedents;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(Lexer, CommentsAndBlankLinesIgnored) {
  auto toks = tokenize("# comment\n\nx = 1  # trailing\n");
  EXPECT_EQ(toks[0].kind, TokKind::kName);
}

TEST(Lexer, StringsAndFloats) {
  auto toks = tokenize("s = \"count-min\"\nf = 1.5\n");
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "count-min");
  bool found_float = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kFloat) {
      EXPECT_DOUBLE_EQ(t.float_value, 1.5);
      found_float = true;
    }
  }
  EXPECT_TRUE(found_float);
}

TEST(Lexer, NewlinesInsideBracketsInsignificant) {
  auto toks = tokenize("x = f(a,\n      b)\n");
  int newlines = 0;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 1);
}

TEST(Lexer, RejectsBadIndent) {
  EXPECT_THROW(tokenize("if a:\n    b = 1\n  c = 2\n"), ParseError);
}

// --- parser ---

TEST(Parser, SimpleAssignAndAttr) {
  auto m = parseModule("idx = hdr.key\n");
  ASSERT_EQ(m.stmts.size(), 1u);
  EXPECT_EQ(m.stmts[0]->kind, StmtKind::kAssign);
  EXPECT_EQ(m.stmts[0]->value->dottedPath(), "hdr.key");
}

TEST(Parser, IfElifElse) {
  auto m = parseModule(
      "if a == 1:\n    x = 1\nelif a == 2:\n    x = 2\nelse:\n    x = 3\n");
  ASSERT_EQ(m.stmts.size(), 1u);
  const Stmt& s = *m.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::kIf);
  ASSERT_EQ(s.orelse.size(), 1u);
  EXPECT_EQ(s.orelse[0]->kind, StmtKind::kIf);  // elif nests
  EXPECT_EQ(s.orelse[0]->orelse.size(), 1u);    // final else body
}

TEST(Parser, ForRange) {
  auto m = parseModule("for i in range(3):\n    x = i\n");
  ASSERT_EQ(m.stmts.size(), 1u);
  EXPECT_EQ(m.stmts[0]->kind, StmtKind::kFor);
  EXPECT_EQ(m.stmts[0]->loop_var, "i");
  EXPECT_EQ(m.stmts[0]->range_args.size(), 1u);
}

TEST(Parser, RejectsNonRangeFor) {
  EXPECT_THROW(parseModule("for i in items:\n    x = i\n"), ParseError);
}

TEST(Parser, CallWithKwargs) {
  auto m = parseModule("mem = Array(row=3, size=65536, w=32)\n");
  const Expr& call = *m.stmts[0]->value;
  EXPECT_EQ(call.kind, ExprKind::kCall);
  EXPECT_EQ(call.kwargs.size(), 3u);
  EXPECT_EQ(call.kwargs[0].name, "row");
}

TEST(Parser, DictArg) {
  auto m = parseModule("back(hdr={op: 2, vals: v})\n");
  const Expr& call = *m.stmts[0]->value;
  ASSERT_EQ(call.kwargs.size(), 1u);
  EXPECT_EQ(call.kwargs[0].value->kind, ExprKind::kDict);
  EXPECT_EQ(call.kwargs[0].value->kwargs.size(), 2u);
}

TEST(Parser, OperatorPrecedence) {
  auto m = parseModule("x = 1 + 2 * 3\n");
  const Expr& e = *m.stmts[0]->value;
  EXPECT_EQ(e.str, "+");
  EXPECT_EQ(e.index->str, "*");
}

TEST(Parser, AugAssign) {
  auto m = parseModule("x += 2\n");
  EXPECT_EQ(m.stmts[0]->kind, StmtKind::kAugAssign);
  EXPECT_EQ(m.stmts[0]->aug_op, "+");
}

TEST(Parser, CountLoc) {
  EXPECT_EQ(countLoc("a = 1\n# comment\n\nb = 2\n"), 2);
}

// --- lowering ---

ir::IrProgram lower(const std::string& src, HeaderSpec hdr = {},
                    CompileOptions opts = {}) {
  return compileSource(src, hdr, opts);
}

TEST(Lower, StraightLineArithmetic) {
  HeaderSpec hdr;
  hdr.add("a", 32);
  hdr.add("out", 32);
  auto p = lower("x = hdr.a + 3\nhdr.out = x * 2\n", hdr);
  ir::PacketView pkt;
  pkt.setField("hdr.a", 5);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.field("hdr.out"), 16u);  // (5+3)*2
}

TEST(Lower, DeadCodeEliminated) {
  HeaderSpec hdr;
  hdr.add("a", 32);
  // y is never used and has no side effects: both instructions fold away.
  auto p = lower("x = hdr.a + 3\ny = x * 2\n", hdr);
  EXPECT_TRUE(p.instrs.empty());
}

TEST(Lower, FlagChainRebalanced) {
  HeaderSpec hdr;
  hdr.add("data", 32, 16);
  hdr.add("flag", 8);
  auto p = lower(
      "f = 0\n"
      "for i in range(16):\n"
      "    if hdr.data[i] != 0:\n"
      "        f = 1\n"
      "hdr.flag = f\n",
      hdr);
  // Dependency depth must be logarithmic, not 16 deep: count the longest
  // chain of select/lor instructions.
  const auto g = ir::buildDepGraph(p);
  std::vector<int> depth(p.instrs.size(), 0);
  int longest = 0;
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    for (int j : g.deps[i]) {
      depth[i] = std::max(depth[i], depth[static_cast<std::size_t>(j)] + 1);
    }
    longest = std::max(longest, depth[i]);
  }
  EXPECT_LE(longest, 8);  // log2(16)=4 for the OR tree plus cmp/select ends

  // Semantics preserved.
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView zero;
  interp.runAll(p, zero);
  EXPECT_EQ(zero.field("hdr.flag"), 0u);
  ir::PacketView one;
  one.setField("hdr.data.11", 5);
  interp.runAll(p, one);
  EXPECT_EQ(one.field("hdr.flag"), 1u);
}

TEST(Lower, ConstantFolding) {
  auto p = lower("x = 2 ** 10 - 24\n");
  // Entirely constant: no instructions should be emitted for x.
  EXPECT_TRUE(p.instrs.empty());
}

TEST(Lower, LoopUnrolling) {
  HeaderSpec hdr;
  hdr.add("k", 32);
  auto p = lower(
      "mem = Array(row=1, size=16, w=32)\n"
      "for i in range(4):\n"
      "    write(mem, i, hdr.k)\n",
      hdr);
  int writes = 0;
  for (const auto& ins : p.instrs) {
    if (ins.op == ir::Opcode::kRegWrite) ++writes;
  }
  EXPECT_EQ(writes, 4);
}

TEST(Lower, NonConstantLoopBoundRejected) {
  HeaderSpec hdr;
  hdr.add("n", 32);
  EXPECT_THROW(lower("for i in range(hdr.n):\n    x = i\n", hdr),
               CompileError);
}

TEST(Lower, IfBecomesPredication) {
  HeaderSpec hdr;
  hdr.add("op", 8);
  hdr.add("v", 32);
  auto p = lower(
      "if hdr.op == 1:\n"
      "    hdr.v = 10\n"
      "else:\n"
      "    hdr.v = 20\n",
      hdr);
  // Field writes must be predicated.
  int predicated = 0;
  for (const auto& ins : p.instrs) {
    if (ins.pred && ins.dest.isField()) ++predicated;
  }
  EXPECT_EQ(predicated, 2);

  ir::PacketView pkt;
  pkt.setField("hdr.op", 1);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.field("hdr.v"), 10u);

  ir::PacketView pkt2;
  pkt2.setField("hdr.op", 9);
  interp.runAll(p, pkt2);
  EXPECT_EQ(pkt2.field("hdr.v"), 20u);
}

TEST(Lower, CompileTimeIfFoldsAway) {
  auto p = lower(
      "is_convert = 0\n"
      "if is_convert:\n"
      "    drop()\n");
  EXPECT_TRUE(p.instrs.empty());
}

TEST(Lower, VariableMergeUnderPredicate) {
  HeaderSpec hdr;
  hdr.add("c", 8);
  hdr.add("out", 32);
  auto p = lower(
      "x = 1\n"
      "if hdr.c == 7:\n"
      "    x = 5\n"
      "hdr.out = x\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView taken;
  taken.setField("hdr.c", 7);
  interp.runAll(p, taken);
  EXPECT_EQ(taken.field("hdr.out"), 5u);
  ir::PacketView not_taken;
  not_taken.setField("hdr.c", 0);
  interp.runAll(p, not_taken);
  EXPECT_EQ(not_taken.field("hdr.out"), 1u);
}

TEST(Lower, NestedPredicates) {
  HeaderSpec hdr;
  hdr.add("a", 8);
  hdr.add("b", 8);
  hdr.add("out", 32);
  auto p = lower(
      "hdr.out = 0\n"
      "if hdr.a == 1:\n"
      "    if hdr.b == 2:\n"
      "        hdr.out = 12\n"
      "    else:\n"
      "        hdr.out = 10\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  auto run = [&](std::uint64_t a, std::uint64_t b) {
    ir::PacketView pkt;
    pkt.setField("hdr.a", a);
    pkt.setField("hdr.b", b);
    interp.runAll(p, pkt);
    return pkt.field("hdr.out");
  };
  EXPECT_EQ(run(1, 2), 12u);
  EXPECT_EQ(run(1, 3), 10u);
  EXPECT_EQ(run(0, 2), 0u);
}

TEST(Lower, CountMinSketchQuickstart) {
  // The paper's Fig. 1 ClickINC program.
  HeaderSpec hdr;
  hdr.add("key", 32);
  hdr.add("out", 32);
  const std::string src =
      "mem = Array(row=3, size=65536, w=32)\n"
      "vals = list()\n"
      "for i in range(3):\n"
      "    f = Hash(type=\"crc_16\", key=hdr.key, ceil=65536)\n"
      "    idx = get(f, hdr.key)\n"
      "    vals.append(count(mem[i], idx, 1))\n"
      "relt = min(vals)\n"
      "hdr.out = relt\n";
  auto p = lower(src, hdr);
  EXPECT_EQ(p.states.size(), 3u);

  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  // Same key counted three times -> min counter reaches 3.
  std::uint64_t out = 0;
  for (int i = 0; i < 3; ++i) {
    ir::PacketView pkt;
    pkt.setField("hdr.key", 99);
    interp.runAll(p, pkt);
    out = pkt.field("hdr.out");
  }
  EXPECT_EQ(out, 3u);
  // A different key starts at 1.
  ir::PacketView other;
  other.setField("hdr.key", 123456);
  interp.runAll(p, other);
  EXPECT_EQ(other.field("hdr.out"), 1u);
}

TEST(Lower, TableLookupNoneComparison) {
  HeaderSpec hdr;
  hdr.add("key", 32);
  hdr.add("hit", 8);
  const std::string src =
      "cache = Table(type=\"exact\", keys=hdr.key, size=128)\n"
      "v = get(cache, hdr.key)\n"
      "if v != None:\n"
      "    hdr.hit = 1\n"
      "else:\n"
      "    hdr.hit = 0\n"
      "    write(cache, hdr.key, 7)\n";
  auto p = lower(src, hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView first;
  first.setField("hdr.key", 5);
  interp.runAll(p, first);
  EXPECT_EQ(first.field("hdr.hit"), 0u);
  ir::PacketView second;
  second.setField("hdr.key", 5);
  interp.runAll(p, second);
  EXPECT_EQ(second.field("hdr.hit"), 1u);
}

TEST(Lower, PacketActionsWithHeaderUpdates) {
  HeaderSpec hdr;
  hdr.add("op", 8);
  auto p = lower(
      "if hdr.op == 1:\n"
      "    back(hdr={op: 2})\n"
      "else:\n"
      "    drop()\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView req;
  req.setField("hdr.op", 1);
  interp.runAll(p, req);
  EXPECT_EQ(req.verdict, ir::Verdict::kSendBack);
  EXPECT_EQ(req.field("hdr.op"), 2u);
  ir::PacketView other;
  other.setField("hdr.op", 3);
  interp.runAll(p, other);
  EXPECT_EQ(other.verdict, ir::Verdict::kDrop);
}

TEST(Lower, VectorFieldsElementwise) {
  HeaderSpec hdr;
  hdr.add("data", 32, /*count=*/4);
  hdr.add("out", 32, 4);
  const std::string src =
      "agg = Array(row=4, size=8, w=32)\n"
      "vals = read(agg, 0)\n"
      "nv = vals + hdr.data\n"
      "write(agg, 0, nv)\n"
      "for i in range(4):\n"
      "    hdr.out[i] = nv[i]\n";
  auto p = lower(src, hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  auto send = [&](std::uint64_t base) {
    ir::PacketView pkt;
    for (int i = 0; i < 4; ++i) {
      pkt.setField(cat("hdr.data.", i), base + static_cast<std::uint64_t>(i));
    }
    interp.runAll(p, pkt);
    return pkt;
  };
  send(10);
  auto pkt = send(100);  // second packet aggregates on top
  EXPECT_EQ(pkt.field("hdr.out.0"), 110u);
  EXPECT_EQ(pkt.field("hdr.out.3"), 116u);
}

TEST(Lower, BloomFilterSetMembership) {
  HeaderSpec hdr;
  hdr.add("key", 32);
  hdr.add("seen", 8);
  const std::string src =
      "bf = Sketch(type=\"bloom-filter\", rows=3, size=1024)\n"
      "if get(bf, hdr.key) == 1:\n"
      "    hdr.seen = 1\n"
      "else:\n"
      "    hdr.seen = 0\n"
      "    write(bf, hdr.key, 1)\n";
  auto p = lower(src, hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView a;
  a.setField("hdr.key", 77);
  interp.runAll(p, a);
  EXPECT_EQ(a.field("hdr.seen"), 0u);
  ir::PacketView b;
  b.setField("hdr.key", 77);
  interp.runAll(p, b);
  EXPECT_EQ(b.field("hdr.seen"), 1u);
}

TEST(Lower, ProfileConstantsAvailable) {
  HeaderSpec hdr;
  hdr.add("v", 32);
  CompileOptions opts;
  opts.constants["TH"] = 100;
  auto p = compileSource(
      "if hdr.v > TH:\n"
      "    drop()\n",
      hdr, opts);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pkt;
  pkt.setField("hdr.v", 150);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.verdict, ir::Verdict::kDrop);
}

TEST(Lower, StatePrefixIsolatesInstances) {
  HeaderSpec hdr;
  hdr.add("key", 32);
  CompileOptions a, b;
  a.state_prefix = "kvs_0_";
  b.state_prefix = "kvs_1_";
  const std::string src =
      "cache = Table(type=\"exact\", keys=hdr.key, size=16)\n";
  auto pa = compileSource(src, hdr, a);
  auto pb = compileSource(src, hdr, b);
  EXPECT_EQ(pa.states[0].name, "kvs_0_cache");
  EXPECT_EQ(pb.states[0].name, "kvs_1_cache");
}

TEST(Lower, SparseDeleteShrinksLength) {
  HeaderSpec hdr;
  hdr.add("feat", 32, 4);
  auto p = lower(
      "for i in range(4):\n"
      "    if hdr.feat[i] == 0:\n"
      "        del(hdr.feat[i])\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pkt;
  pkt.setField("hdr._len", 64);
  pkt.setField("hdr.feat.0", 5);
  pkt.setField("hdr.feat.1", 0);
  pkt.setField("hdr.feat.2", 0);
  pkt.setField("hdr.feat.3", 9);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.field("hdr._len"), 64u - 8u);  // two 4-byte values removed
}

TEST(Lower, UserDefinedFunctionInlines) {
  HeaderSpec hdr;
  hdr.add("a", 32);
  hdr.add("b", 32);
  hdr.add("out", 32);
  auto p = lower(
      "def comp(v1, v2):\n"
      "    if v1 < v2:\n"
      "        r = v1\n"
      "    else:\n"
      "        r = v2\n"
      "    return r\n"
      "hdr.out = comp(hdr.a, hdr.b)\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pkt;
  pkt.setField("hdr.a", 9);
  pkt.setField("hdr.b", 4);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.field("hdr.out"), 4u);
}

TEST(Lower, SignBitComparisonForOverflow) {
  HeaderSpec hdr;
  hdr.add("x", 32);
  hdr.add("neg", 8);
  auto p = lower(
      "if hdr.x < 0:\n"
      "    hdr.neg = 1\n"
      "else:\n"
      "    hdr.neg = 0\n",
      hdr);
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pos;
  pos.setField("hdr.x", 5);
  interp.runAll(p, pos);
  EXPECT_EQ(pos.field("hdr.neg"), 0u);
  ir::PacketView neg;
  neg.setField("hdr.x", 0x80000000u);  // MSB set
  interp.runAll(p, neg);
  EXPECT_EQ(neg.field("hdr.neg"), 1u);
}

TEST(Lower, TemplateResolverInstantiation) {
  // A trivial registered template: counts packets into an array.
  class Resolver : public TemplateResolver {
   public:
    Resolver() {
      def_.name = "Counter";
      def_.params = {"size"};
      def_.source =
          "ctr = Array(row=1, size=size, w=32)\n"
          "n = count(ctr, 0, 1)\n"
          "hdr.cnt = n\n";
      def_.header.add("cnt", 32);
    }
    const TemplateDef* find(const std::string& name) const override {
      return name == "Counter" ? &def_ : nullptr;
    }

   private:
    TemplateDef def_;
  };
  Resolver resolver;
  HeaderSpec hdr;
  auto p = compileSource(
      "c = Counter(size=8)\n"
      "c(hdr)\n",
      hdr, {}, &resolver);
  // State name carries the instance prefix.
  ASSERT_EQ(p.states.size(), 1u);
  EXPECT_EQ(p.states[0].name, "counter_ctr");
  ir::StateStore store;
  Rng rng(1);
  ir::Interpreter interp(&store, &rng);
  ir::PacketView pkt;
  interp.runAll(p, pkt);
  interp.runAll(p, pkt);
  EXPECT_EQ(pkt.field("hdr.cnt"), 2u);
}

TEST(Lower, VerifiesEmittedIr) {
  HeaderSpec hdr;
  hdr.add("k", 32);
  // Any successfully lowered program passes the IR verifier (lowering
  // calls verify() internally; this exercises a nontrivial one).
  EXPECT_NO_THROW(lower(
      "s = Sketch(type=\"count-min\", rows=3, size=4096)\n"
      "c = count(s, hdr.k, 1)\n"
      "if c > 10:\n"
      "    mirror()\n",
      hdr));
}

}  // namespace
}  // namespace clickinc::lang
