#include <gtest/gtest.h>

#include <set>

#include "core/service.h"
#include "device/validate.h"
#include "modules/templates.h"
#include "place/blockdag.h"
#include "place/intradevice.h"
#include "place/smt_baseline.h"
#include "place/treedp.h"
#include "topo/ec.h"
#include "util/strings.h"

namespace clickinc::place {
namespace {

ir::IrProgram mlaggProgram(int num_agg = 64, int dim = 4) {
  modules::ModuleLibrary lib;
  return lib.compileTemplate(
      "MLAgg", "agg",
      {{"NumAgg", static_cast<std::uint64_t>(num_agg)},
       {"Dim", static_cast<std::uint64_t>(dim)},
       {"NumWorker", 2},
       {"IsConvert", 0}});
}

ir::IrProgram dqaccProgram() {
  modules::ModuleLibrary lib;
  return lib.compileTemplate("DQAcc", "dq",
                             {{"CacheDepth", 256}, {"CacheLen", 4}});
}

// --- block DAG ---

TEST(BlockDag, UnionOfBlocksEqualsProgram) {
  const auto prog = mlaggProgram();
  const auto dag = BlockDag::build(prog);
  std::set<int> covered;
  for (const auto& b : dag.blocks()) {
    for (int i : b.instrs) {
      EXPECT_TRUE(covered.insert(i).second) << "instr in two blocks";
    }
  }
  EXPECT_EQ(covered.size(), prog.instrs.size());
}

TEST(BlockDag, StateSharingInstrsShareBlock) {
  const auto prog = mlaggProgram();
  const auto dag = BlockDag::build(prog);
  // All instructions touching a given stateful object live in one block.
  std::map<int, std::set<int>> blocks_of_state;
  for (const auto& b : dag.blocks()) {
    for (int i : b.instrs) {
      const auto& ins = prog.instrs[static_cast<std::size_t>(i)];
      if (ins.state_id >= 0) blocks_of_state[ins.state_id].insert(b.id);
    }
  }
  for (const auto& [sid, bset] : blocks_of_state) {
    EXPECT_EQ(bset.size(), 1u) << "state " << sid << " split across blocks";
  }
}

TEST(BlockDag, TopologicalLinearization) {
  const auto prog = mlaggProgram();
  const auto dag = BlockDag::build(prog);
  for (const auto& b : dag.blocks()) {
    for (int d : b.deps) {
      EXPECT_LT(d, b.id) << "dependency after dependent in linear order";
    }
  }
}

TEST(BlockDag, MergeReducesBlockCount) {
  const auto prog = mlaggProgram();
  BlockDagOptions merged;
  BlockDagOptions unmerged;
  unmerged.merge = false;
  const auto a = BlockDag::build(prog, merged);
  const auto b = BlockDag::build(prog, unmerged);
  EXPECT_LT(a.size(), b.size());
  EXPECT_GT(a.size(), 1);
}

TEST(BlockDag, BlockSizeThresholdRespected) {
  const auto prog = mlaggProgram();
  BlockDagOptions opts;
  opts.max_block_instrs = 6;
  const auto dag = BlockDag::build(prog, opts);
  for (const auto& b : dag.blocks()) {
    // State-sharing groups may exceed the threshold (they are inseparable);
    // merged blocks of independent instructions must respect it.
    bool has_state = false;
    for (int i : b.instrs) {
      if (prog.instrs[static_cast<std::size_t>(i)].state_id >= 0) {
        has_state = true;
      }
    }
    if (!has_state) {
      EXPECT_LE(b.instrs.size(), 6u);
    }
  }
}

TEST(BlockDag, CutBitsZeroAtEnds) {
  const auto prog = dqaccProgram();
  const auto dag = BlockDag::build(prog);
  EXPECT_EQ(dag.cutBits(0), 0);
  EXPECT_EQ(dag.cutBits(dag.size()), 0);
  // Interior cuts carry the hash/index temporaries.
  bool some_positive = false;
  for (int i = 1; i < dag.size(); ++i) {
    if (dag.cutBits(i) > 0) some_positive = true;
  }
  EXPECT_TRUE(some_positive);
}

TEST(BlockDag, ScoreAdditive) {
  const auto prog = dqaccProgram();
  const auto dag = BlockDag::build(prog);
  const int m = dag.size();
  EXPECT_NEAR(dag.scoreOf(0, m),
              dag.scoreOf(0, m / 2) + dag.scoreOf(m / 2, m), 1e-9);
  EXPECT_NEAR(dag.scoreOf(0, m), dag.totalScore(), 1e-9);
}

// --- intra-device ---

TEST(IntraDevice, CompactPlacementValidates) {
  const auto prog = mlaggProgram();
  const auto tofino = device::makeTofino();
  const auto occ = DeviceOccupancy::fresh(tofino);
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const auto p = placeCompact(occ, prog, all);
  ASSERT_TRUE(p.feasible);
  EXPECT_EQ(device::validatePipelinePlacement(tofino, prog, p.instr_idxs,
                                              p.stage_of),
            "");
  EXPECT_GT(p.stages_used, 1);
  EXPECT_LE(p.stages_used, tofino.num_stages);
}

TEST(IntraDevice, RespectsMinStage) {
  const auto prog = dqaccProgram();
  const auto occ = DeviceOccupancy::fresh(device::makeTofino());
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const auto p = placeCompact(occ, prog, all, /*min_stage=*/3);
  ASSERT_TRUE(p.feasible);
  for (int s : p.stage_of) EXPECT_GE(s, 3);
}

TEST(IntraDevice, InfeasibleWhenUnsupportedClass) {
  modules::ModuleLibrary lib;
  const auto prog = lib.compileTemplate(
      "KVS", "kvs", {{"CacheSize", 128}, {"ValDim", 2}, {"TH", 4}});
  const auto occ = DeviceOccupancy::fresh(device::makeTofino());
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  EXPECT_FALSE(placeCompact(occ, prog, all).feasible);  // BSEM on Tofino
  const auto nfp_occ = DeviceOccupancy::fresh(device::makeNfp());
  EXPECT_TRUE(placeCompact(nfp_occ, prog, all).feasible);
}

TEST(IntraDevice, CommitReducesCapacity) {
  const auto prog = dqaccProgram();
  const auto model = device::makeTofino();
  auto occ = DeviceOccupancy::fresh(model);
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const double before = occ.remainingRatio();
  const auto p = placeCompact(occ, prog, all);
  ASSERT_TRUE(p.feasible);
  commitPlacement(occ, prog, p);
  EXPECT_LT(occ.remainingRatio(), before);
}

TEST(IntraDevice, ExhaustiveMatchesCompactFeasibility) {
  const auto prog = dqaccProgram();
  const auto occ = DeviceOccupancy::fresh(device::makeTofino());
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const auto compact = placeCompact(occ, prog, all);
  const auto exhaustive = placeExhaustive(occ, prog, all, 2000000);
  ASSERT_TRUE(compact.feasible);
  ASSERT_TRUE(exhaustive.feasible);
  // The unpruned search must do strictly more work.
  EXPECT_GT(exhaustive.steps, compact.steps);
}

// --- tree DP ---

class TreeDpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = topo::Topology::paperEmulation();
  }

  topo::EcTree treeFor(std::vector<std::string> srcs, std::string dst) {
    topo::TrafficSpec spec;
    for (const auto& s : srcs) {
      spec.sources.push_back({topo_.findNode(s), 10.0});
    }
    spec.dst_host = topo_.findNode(dst);
    return buildEcTree(topo_, spec);
  }

  topo::Topology topo_;
};

TEST_F(TreeDpFixture, MlaggPlacesAcrossFatTree) {
  const auto prog = mlaggProgram(128, 4);
  const auto dag = BlockDag::build(prog);
  const auto tree = treeFor({"pod0a", "pod1a"}, "pod2b");
  OccupancyMap occ(&topo_);
  const auto plan = placeProgram(dag, tree, topo_, occ);
  ASSERT_TRUE(plan.feasible) << plan.failure;
  EXPECT_DOUBLE_EQ(plan.ht, 1.0);
  EXPECT_GT(plan.gain, 0.0);
  // Every block placed exactly once per path: total blocks over the plan's
  // segments must cover [0, m) for each root-to-leaf path. Check coverage
  // through the root path: client prefix + root + server chain = m.
  int covered = 0;
  for (const auto& a : plan.assignments) {
    covered = std::max(covered, a.to_block);
  }
  EXPECT_EQ(covered, dag.size());
}

TEST_F(TreeDpFixture, PlanValidatesOnEveryDevice) {
  const auto prog = mlaggProgram(128, 4);
  const auto dag = BlockDag::build(prog);
  const auto tree = treeFor({"pod0a", "pod1b"}, "pod2a");
  OccupancyMap occ(&topo_);
  const auto plan = placeProgram(dag, tree, topo_, occ);
  ASSERT_TRUE(plan.feasible) << plan.failure;
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (p.instr_idxs.empty()) continue;
      const auto& model = topo_.node(dev).model;
      EXPECT_EQ(device::validatePlacement(model, prog, p.instr_idxs,
                                          p.stage_of),
                "")
          << "device " << topo_.node(dev).name;
    }
  }
}

TEST_F(TreeDpFixture, CommitConsumesResources) {
  const auto prog = mlaggProgram(128, 4);
  const auto dag = BlockDag::build(prog);
  const auto tree = treeFor({"pod0a"}, "pod2b");
  OccupancyMap occ(&topo_);
  const double before = occ.remainingRatio();
  const auto plan = placeProgram(dag, tree, topo_, occ);
  ASSERT_TRUE(plan.feasible);
  commitPlan(plan, prog, occ);
  EXPECT_LT(occ.remainingRatio(), before);
}

TEST_F(TreeDpFixture, SequentialProgramsAvoidFullDevices) {
  // Keep placing MLAgg instances; the placer must keep finding feasible
  // spots (spreading across the tree) for several instances.
  OccupancyMap occ(&topo_);
  const auto tree = treeFor({"pod0a", "pod1a"}, "pod2b");
  int placed = 0;
  for (int k = 0; k < 4; ++k) {
    modules::ModuleLibrary lib;
    auto prog = lib.compileTemplate(
        "MLAgg", cat("agg", k),
        {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}});
    const auto dag = BlockDag::build(prog);
    const auto plan = placeProgram(dag, tree, topo_, occ);
    if (!plan.feasible) break;
    commitPlan(plan, prog, occ);
    ++placed;
  }
  EXPECT_GE(placed, 2);
}

TEST_F(TreeDpFixture, KvsUsesBypassFpga) {
  // A huge KVS cache cannot fit switch SRAM; the bypass FPGA on the pod2
  // Aggs (or the NFP NIC) must host the stateful table.
  modules::ModuleLibrary lib;
  auto prog = lib.compileTemplate(
      "KVS", "kvs",
      {{"CacheSize", 100000}, {"ValDim", 4}, {"TH", 64}});
  const auto dag = BlockDag::build(prog);
  const auto tree = treeFor({"pod0a", "pod1a"}, "pod2b");
  OccupancyMap occ(&topo_);
  const auto plan = placeProgram(dag, tree, topo_, occ);
  ASSERT_TRUE(plan.feasible) << plan.failure;
  // Some segment must land on an NFP NIC or FPGA (the only BSEM hosts).
  bool on_capable = false;
  for (int dev : plan.devicesUsed()) {
    const auto chip = topo_.node(dev).model.chip;
    if (chip == device::ChipKind::kNfp || chip == device::ChipKind::kFpga ||
        chip == device::ChipKind::kFpgaNic) {
      on_capable = true;
    }
  }
  EXPECT_TRUE(on_capable);
}

TEST_F(TreeDpFixture, InfeasibleWhenNoCapableDevice) {
  // Float aggregation on an intra-pod path (pod0a -> pod0b) only crosses
  // NFP NICs and Tofino ToRs — no float-capable device, so placement must
  // fail. Routing via pod1 (FPGA NICs) or pod2 (bypass FPGAs) succeeds.
  modules::ModuleLibrary lib;
  auto prog = lib.compileTemplate(
      "MLAgg", "aggf",
      {{"NumAgg", 64}, {"Dim", 2}, {"NumWorker", 2}, {"IsConvert", 1},
       {"Scale", 64}});
  const auto dag = BlockDag::build(prog);
  const auto tree = treeFor({"pod0a"}, "pod0b");
  OccupancyMap occ(&topo_);
  const auto plan = placeProgram(dag, tree, topo_, occ);
  EXPECT_FALSE(plan.feasible);
  // Routing the same job from pod1 (FPGA NICs) succeeds.
  const auto tree2 = treeFor({"pod1a"}, "pod2b");
  const auto plan2 = placeProgram(dag, tree2, topo_, occ);
  EXPECT_TRUE(plan2.feasible) << plan2.failure;
}

TEST(AdaptiveWeights, ShiftTowardResourcesAsCapacityDrops) {
  const auto fresh = adaptiveWeights(1.0);
  EXPECT_NEAR(fresh.wr, 0.0, 1e-9);
  EXPECT_NEAR(fresh.wp, 0.5, 1e-9);
  const auto half = adaptiveWeights(0.5);
  EXPECT_GT(half.wr, 0.25);
  const auto empty = adaptiveWeights(0.0);
  EXPECT_NEAR(empty.wr, 0.5, 1e-9);
  EXPECT_NEAR(empty.wp, 0.0, 1e-9);
}

// --- fast-path equivalence and memo fingerprints ---

void expectPlacementsEqual(const IntraPlacement& a, const IntraPlacement& b,
                           const std::string& where) {
  EXPECT_EQ(a.feasible, b.feasible) << where;
  EXPECT_EQ(a.instr_idxs, b.instr_idxs) << where;
  EXPECT_EQ(a.stage_of, b.stage_of) << where;
  EXPECT_EQ(a.stages_used, b.stages_used) << where;
}

void expectPlansEqual(const PlacementPlan& fast, const PlacementPlan& ref) {
  ASSERT_EQ(fast.feasible, ref.feasible) << fast.failure << ref.failure;
  if (!fast.feasible) return;
  EXPECT_DOUBLE_EQ(fast.gain, ref.gain);
  EXPECT_DOUBLE_EQ(fast.ht, ref.ht);
  EXPECT_DOUBLE_EQ(fast.hr, ref.hr);
  EXPECT_DOUBLE_EQ(fast.hp, ref.hp);
  ASSERT_EQ(fast.assignments.size(), ref.assignments.size());
  for (std::size_t k = 0; k < fast.assignments.size(); ++k) {
    const auto& fa = fast.assignments[k];
    const auto& ra = ref.assignments[k];
    const std::string where = cat("assignment #", k, " on tree node ",
                                  ra.tree_node);
    EXPECT_EQ(fa.tree_node, ra.tree_node) << where;
    EXPECT_EQ(fa.from_block, ra.from_block) << where;
    EXPECT_EQ(fa.to_block, ra.to_block) << where;
    EXPECT_EQ(fa.bypass_from, ra.bypass_from) << where;
    ASSERT_EQ(fa.on_device.size(), ra.on_device.size()) << where;
    for (const auto& [dev, rp] : ra.on_device) {
      auto it = fa.on_device.find(dev);
      ASSERT_NE(it, fa.on_device.end()) << where << " device " << dev;
      expectPlacementsEqual(it->second, rp, cat(where, " device ", dev));
    }
    ASSERT_EQ(fa.on_bypass.size(), ra.on_bypass.size()) << where;
    for (const auto& [dev, rp] : ra.on_bypass) {
      auto it = fa.on_bypass.find(dev);
      ASSERT_NE(it, fa.on_bypass.end()) << where << " bypass " << dev;
      expectPlacementsEqual(it->second, rp, cat(where, " bypass ", dev));
    }
  }
}

// Every workload program from src/apps (MLAgg dense/sparse-sized, KVS,
// DQAcc) must place identically on the fast path (memo + early exit) and
// the retained reference path, across the heterogeneous paper topology,
// a heterogeneous fat-tree, and a chain.
class PlanEquivalence : public ::testing::Test {
 protected:
  static std::vector<ir::IrProgram> workloadPrograms() {
    modules::ModuleLibrary lib;
    std::vector<ir::IrProgram> progs;
    progs.push_back(lib.compileTemplate(
        "MLAgg", "agg_small",
        {{"NumAgg", 128}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}}));
    progs.push_back(lib.compileTemplate(
        "MLAgg", "agg_large",
        {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}}));
    progs.push_back(lib.compileTemplate(
        "KVS", "kvs",
        {{"CacheSize", 100000}, {"ValDim", 4}, {"TH", 64}}));
    progs.push_back(lib.compileTemplate(
        "DQAcc", "dq", {{"CacheDepth", 1024}, {"CacheLen", 4}}));
    return progs;
  }

  static topo::TrafficSpec specFor(const topo::Topology& topo,
                                   const std::vector<std::string>& srcs,
                                   const std::string& dst) {
    topo::TrafficSpec spec;
    for (const auto& s : srcs) spec.sources.push_back({topo.findNode(s), 10.0});
    spec.dst_host = topo.findNode(dst);
    return spec;
  }

  static void checkAllWorkloads(const topo::Topology& topo,
                                const topo::TrafficSpec& spec) {
    for (const auto& prog : workloadPrograms()) {
      const auto dag = BlockDag::build(prog);
      const auto tree = buildEcTree(topo, spec);
      OccupancyMap occ(&topo);
      PlacementOptions fast_opts;
      fast_opts.fast = true;
      PlacementOptions ref_opts;
      ref_opts.fast = false;
      const auto fast = placeProgram(dag, tree, topo, occ, fast_opts);
      const auto ref = placeProgram(dag, tree, topo, occ, ref_opts);
      SCOPED_TRACE(prog.name);
      expectPlansEqual(fast, ref);
    }
  }
};

TEST_F(PlanEquivalence, PaperEmulationTopology) {
  const auto topo = topo::Topology::paperEmulation();
  checkAllWorkloads(topo, specFor(topo, {"pod0a", "pod1a"}, "pod2b"));
  checkAllWorkloads(topo, specFor(topo, {"pod0a", "pod0b", "pod1b"}, "pod2a"));
}

TEST_F(PlanEquivalence, HeterogeneousFatTree) {
  const auto topo = topo::Topology::fatTree(4, 2, device::makeTofino(),
                                            device::makeTrident4(),
                                            device::makeTofino2());
  checkAllWorkloads(topo, specFor(topo, {"pod0h0", "pod1h0"}, "pod2h1"));
}

TEST_F(PlanEquivalence, TofinoChain) {
  const std::vector<device::DeviceModel> chain(8, device::makeTofino());
  const auto topo = topo::Topology::chain(chain);
  checkAllWorkloads(topo, specFor(topo, {"client"}, "server"));
}

TEST_F(PlanEquivalence, SequentialCommitsWithSharedArena) {
  // Multi-program runs share the occupancy-keyed memo through one arena;
  // every trial must still match an arena-free reference placement even as
  // commits change device occupancies between trials.
  const auto topo = topo::Topology::paperEmulation();
  const auto spec = specFor(topo, {"pod0a", "pod1a"}, "pod2b");
  const auto tree = buildEcTree(topo, spec);
  OccupancyMap occ_fast(&topo);
  OccupancyMap occ_ref(&topo);
  PlacementArena arena;
  for (int k = 0; k < 4; ++k) {
    modules::ModuleLibrary lib;
    const auto prog = lib.compileTemplate(
        "MLAgg", cat("agg", k),
        {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}});
    const auto dag = BlockDag::build(prog);
    PlacementOptions fast_opts;
    fast_opts.fast = true;
    PlacementOptions ref_opts;
    ref_opts.fast = false;
    const auto fast = placeProgram(dag, tree, topo, occ_fast, fast_opts,
                                   &arena);
    const auto ref = placeProgram(dag, tree, topo, occ_ref, ref_opts);
    SCOPED_TRACE(cat("trial ", k));
    expectPlansEqual(fast, ref);
    if (!fast.feasible) break;
    commitPlan(fast, prog, occ_fast);
    commitPlan(ref, prog, occ_ref);
  }
  // Identical templates re-placed on changed occupancies must still have
  // reused work: the arena memo sees hits from trial 2 onward.
  EXPECT_GT(arena.memo().hits(), 0);
}

TEST(PlacementStats, FastPathReportsCacheCounters) {
  const auto topo = topo::Topology::paperEmulation();
  topo::TrafficSpec spec;
  spec.sources = {{topo.findNode("pod0a"), 10.0},
                  {topo.findNode("pod1a"), 10.0}};
  spec.dst_host = topo.findNode("pod2b");
  const auto tree = buildEcTree(topo, spec);
  modules::ModuleLibrary lib;
  const auto prog = lib.compileTemplate(
      "MLAgg", "agg",
      {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}});
  const auto dag = BlockDag::build(prog);
  OccupancyMap occ(&topo);
  PlacementOptions opts;
  opts.fast = true;
  const auto plan = placeProgram(dag, tree, topo, occ, opts);
  ASSERT_TRUE(plan.feasible) << plan.failure;
  EXPECT_GT(plan.stats.seg_probes, 0);
  EXPECT_GT(plan.stats.intra_calls, 0);
  // EC nodes in the paper topology hold >= 2 identical replicas, so the
  // replica memo must fire.
  EXPECT_GT(plan.stats.intra_memo_hits, 0);
  EXPECT_GT(plan.stats.intraMemoHitRate(), 0.0);
  EXPECT_GE(plan.stats.segCacheHitRate(), 0.0);
  // The reference path reports direct calls only.
  PlacementOptions ref;
  ref.fast = false;
  const auto slow = placeProgram(dag, tree, topo, occ, ref);
  EXPECT_EQ(slow.stats.intra_memo_hits, 0);
  EXPECT_EQ(slow.stats.early_breaks, 0);
  EXPECT_GT(slow.stats.intra_calls, plan.stats.intra_calls);
}

TEST(OccupancyFingerprint, EqualStatesHashEqual) {
  const auto model = device::makeTofino();
  const auto a = DeviceOccupancy::fresh(model);
  const auto b = DeviceOccupancy::fresh(model);
  EXPECT_EQ(occupancyFingerprint(a), occupancyFingerprint(b));
  // Different models differ.
  const auto nfp = DeviceOccupancy::fresh(device::makeNfp());
  EXPECT_NE(occupancyFingerprint(a), occupancyFingerprint(nfp));
}

TEST(OccupancyFingerprint, PerturbedOccupancyHashesDiffer) {
  const auto prog = dqaccProgram();
  const auto model = device::makeTofino();
  auto occ = DeviceOccupancy::fresh(model);
  const auto before = occupancyFingerprint(occ);
  std::vector<int> all;
  for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const auto p = placeCompact(occ, prog, all);
  ASSERT_TRUE(p.feasible);
  commitPlacement(occ, prog, p);
  EXPECT_NE(occupancyFingerprint(occ), before);
  releasePlacement(occ, prog, p);
  EXPECT_EQ(occupancyFingerprint(occ), before);
}

TEST(SegmentFingerprint, NameInsensitiveAcrossUsers) {
  // Identical templates submitted under different user/instance names must
  // fingerprint equal so the memo is shared across programs.
  modules::ModuleLibrary lib;
  const auto a = lib.compileTemplate(
      "MLAgg", "mlagg_user1",
      {{"NumAgg", 128}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}});
  const auto b = lib.compileTemplate(
      "MLAgg", "mlagg_user2",
      {{"NumAgg", 128}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}});
  const auto an_a = ir::analyzeProgram(a);
  const auto an_b = ir::analyzeProgram(b);
  std::vector<int> all_a, all_b;
  for (std::size_t i = 0; i < a.instrs.size(); ++i) {
    all_a.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < b.instrs.size(); ++i) {
    all_b.push_back(static_cast<int>(i));
  }
  EXPECT_EQ(segmentFingerprint(a, an_a, all_a),
            segmentFingerprint(b, an_b, all_b));
  // Different parameters produce different demands, hence different prints.
  const auto c = lib.compileTemplate(
      "MLAgg", "mlagg_user3",
      {{"NumAgg", 256}, {"Dim", 4}, {"NumWorker", 2}, {"IsConvert", 0}});
  const auto an_c = ir::analyzeProgram(c);
  std::vector<int> all_c;
  for (std::size_t i = 0; i < c.instrs.size(); ++i) {
    all_c.push_back(static_cast<int>(i));
  }
  EXPECT_NE(segmentFingerprint(a, an_a, all_a),
            segmentFingerprint(c, an_c, all_c));
}

TEST(ServiceArena, MemoSharedAcrossUsers) {
  // Two users submitting the same template through the service share the
  // occupancy-keyed memo: the second submit reuses first-submit work.
  core::ClickIncService svc(topo::Topology::paperEmulation());
  topo::TrafficSpec spec;
  spec.sources = {{svc.topology().findNode("pod0a"), 10.0}};
  spec.dst_host = svc.topology().findNode("pod2b");
  const auto r1 = svc.submit(core::SubmitRequest::fromTemplate(
      "MLAgg", {{"NumAgg", 128}, {"Dim", 4}, {"NumWorker", 2}}, spec));
  ASSERT_TRUE(r1.ok) << r1.error.message();
  const long hits_after_first = svc.placementArena().memo().hits();
  const auto r2 = svc.submit(core::SubmitRequest::fromTemplate(
      "MLAgg", {{"NumAgg", 128}, {"Dim", 4}, {"NumWorker", 2}}, spec));
  ASSERT_TRUE(r2.ok) << r2.error.message();
  EXPECT_GT(svc.placementArena().memo().hits(), hits_after_first);
  EXPECT_GT(r2.plan.stats.intra_memo_hits, 0);
  const auto& cum = svc.placementStats();
  EXPECT_EQ(cum.intra_memo_hits,
            r1.plan.stats.intra_memo_hits + r2.plan.stats.intra_memo_hits);
}

// --- SMT baseline ---

TEST(SmtBaseline, FindsPlacementOnChain) {
  const auto prog = dqaccProgram();
  const auto dag = BlockDag::build(prog);
  std::vector<device::DeviceModel> chain(4, device::makeTofino());
  SmtOptions opts;
  opts.max_steps = 5000000;
  const auto r = smtPlaceChain(dag, chain, opts);
  ASSERT_TRUE(r.feasible);
  int placed = 0;
  for (int n : r.instrs_per_device) placed += n;
  EXPECT_EQ(placed, static_cast<int>(prog.instrs.size()));
}

TEST(SmtBaseline, DpOrdersOfMagnitudeFewerSteps) {
  const auto prog = mlaggProgram(64, 2);
  const auto dag = BlockDag::build(prog);
  std::vector<device::DeviceModel> chain(4, device::makeTofino());
  SmtOptions opts;
  opts.max_steps = 2000000;
  const auto smt = smtPlaceChain(dag, chain, opts);

  const auto topo = topo::Topology::chain(chain);
  topo::TrafficSpec spec;
  spec.sources = {{topo.findNode("client"), 1.0}};
  spec.dst_host = topo.findNode("server");
  const auto tree = buildEcTree(topo, spec);
  OccupancyMap occ(&topo);
  const auto dp = placeProgram(dag, tree, topo, occ);
  ASSERT_TRUE(dp.feasible) << dp.failure;
  EXPECT_GT(smt.steps, dp.steps * 10);
}

TEST(SmtBaseline, FeasibleOnlyIsCheaperButWorse) {
  const auto prog = dqaccProgram();
  const auto dag = BlockDag::build(prog);
  std::vector<device::DeviceModel> chain(3, device::makeTofino());
  SmtOptions optimize;
  optimize.max_steps = 5000000;
  SmtOptions feasible_only;
  feasible_only.optimize = false;
  feasible_only.max_steps = 5000000;
  const auto opt = smtPlaceChain(dag, chain, optimize);
  const auto fst = smtPlaceChain(dag, chain, feasible_only);
  ASSERT_TRUE(opt.feasible);
  ASSERT_TRUE(fst.feasible);
  EXPECT_LE(fst.steps, opt.steps);     // ~half the search
  EXPECT_GE(fst.comm_bits, opt.comm_bits);  // but more partitioning
}

}  // namespace
}  // namespace clickinc::place
