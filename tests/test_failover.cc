// Failure-domain runtime: topology health + FailureEvent log, emulator
// fault gates and structured drop reasons, deterministic fault injection,
// the service failover pipeline (automatic re-placement, make-before-break
// swap, server-only degradation, rollback on deploy failure), retry with
// deterministic backoff, and the chaos suite proving bit-identical
// recovery across 1/2/8-thread pools.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/service.h"
#include "emu/emulator.h"
#include "emu/fault.h"
#include "place/intradevice.h"
#include "topo/ec.h"
#include "topo/topology.h"
#include "util/error.h"
#include "util/strings.h"

namespace clickinc {
namespace {

using core::ClickIncService;
using core::ErrorCode;
using core::RecoveryOutcome;
using core::Stage;
using core::SubmitRequest;

topo::TrafficSpec trafficFor(const topo::Topology& topo,
                             const std::vector<std::string>& srcs,
                             const std::string& dst) {
  topo::TrafficSpec spec;
  for (const auto& s : srcs) {
    spec.sources.push_back({topo.findNode(s), 10.0});
  }
  spec.dst_host = topo.findNode(dst);
  return spec;
}

SubmitRequest dqaccRequest(const topo::Topology& topo,
                           const std::string& src = "pod0a",
                           const std::string& dst = "pod2b") {
  return SubmitRequest::fromTemplate("DQAcc",
                                     {{"CacheDepth", 128}, {"CacheLen", 2}},
                                     trafficFor(topo, {src}, dst));
}

SubmitRequest mlaggRequest(const topo::Topology& topo, std::uint64_t aggs,
                           const std::string& src = "pod0a",
                           const std::string& dst = "pod2b") {
  return SubmitRequest::fromTemplate(
      "MLAgg",
      {{"NumAgg", aggs}, {"Dim", 16}, {"NumWorker", 2}, {"IsConvert", 0}},
      trafficFor(topo, {src}, dst));
}

// Per-device occupancy fingerprints over every programmable node — the
// byte-identity probe used by the rollback and leak assertions.
std::vector<std::uint64_t> allFingerprints(ClickIncService& svc) {
  std::vector<std::uint64_t> fps;
  for (const auto& n : svc.topology().nodes()) {
    if (n.programmable) {
      fps.push_back(place::occupancyFingerprint(svc.occupancy().of(n.id)));
    }
  }
  return fps;
}

std::uint64_t freshFingerprint(const topo::Node& n) {
  return place::occupancyFingerprint(place::DeviceOccupancy::fresh(n.model));
}

std::set<int> deployedUsers(const ClickIncService& svc) {
  std::set<int> users;
  for (const auto& [u, d] : svc.deployments()) {
    (void)d;
    users.insert(u);
  }
  return users;
}

std::set<int> planDeviceSet(const place::PlacementPlan& plan) {
  std::set<int> devs;
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (!p.instr_idxs.empty()) devs.insert(dev);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      if (!p.instr_idxs.empty()) devs.insert(dev);
    }
  }
  return devs;
}

// Probes mutate deployed state (DQAcc is a cache: a repeated key hits and
// bounces at the switch), so callers pick a distinct `base` per trace to
// keep every probe a fresh key.
std::string packetTrace(emu::Emulator& emu, int src, int dst, int user,
                        int count, std::uint64_t base = 1) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr.value", base + static_cast<std::uint64_t>(i) * 7);
    const auto r = emu.send(src, dst, std::move(view), 100, 100);
    out += cat(r.delivered ? "D" : "d", r.dropped ? "X" : "-",
               static_cast<int>(r.drop_reason), "@", r.final_node, ":",
               r.hops, ";");
  }
  return out;
}

// --- topology health ----------------------------------------------------

TEST(TopoHealth, TransitionsAreVersionedAndLogged) {
  auto t = topo::Topology::chain({device::makeTofino(),
                                  device::makeTofino()});
  const int d0 = t.findNode("d0");
  EXPECT_EQ(t.nodeHealth(d0), topo::Health::kUp);
  EXPECT_EQ(t.healthVersion(), 0u);

  const auto ev = t.setNodeHealth(d0, topo::Health::kDown);
  EXPECT_EQ(ev.version, 1u);
  EXPECT_EQ(ev.from, topo::Health::kUp);
  EXPECT_EQ(ev.to, topo::Health::kDown);
  EXPECT_EQ(t.nodeHealth(d0), topo::Health::kDown);
  ASSERT_EQ(t.failureLog().size(), 1u);

  // No-op transition: version 0 event, not logged.
  const auto noop = t.setNodeHealth(d0, topo::Health::kDown);
  EXPECT_EQ(noop.version, 0u);
  EXPECT_EQ(t.failureLog().size(), 1u);
  EXPECT_EQ(t.healthVersion(), 1u);

  const auto heal = t.setNodeHealth(d0, topo::Health::kUp);
  EXPECT_EQ(heal.version, 2u);
  EXPECT_EQ(heal.from, topo::Health::kDown);
}

TEST(TopoHealth, ShortestPathUpAvoidsDeadElements) {
  // Diamond: client -> {a | b} -> server.
  topo::Topology t;
  topo::Node host;
  host.name = "client";
  host.kind = topo::NodeKind::kHost;
  const int client = t.addNode(host);
  topo::Node sw;
  sw.kind = topo::NodeKind::kSwitch;
  sw.programmable = true;
  sw.model = device::makeTofino();
  sw.name = "a";
  const int a = t.addNode(sw);
  sw.name = "b";
  const int b = t.addNode(sw);
  host.name = "server";
  const int server = t.addNode(host);
  t.addLink(client, a);
  t.addLink(a, server);
  t.addLink(client, b);
  t.addLink(b, server);

  // Healthy: identical to shortestPath (fast-path delegation).
  EXPECT_EQ(t.shortestPathUp(client, server), t.shortestPath(client, server));

  const auto via = t.shortestPath(client, server);
  ASSERT_EQ(via.size(), 3u);
  const int first = via[1];
  const int other = first == a ? b : a;
  t.setNodeHealth(first, topo::Health::kDown);
  const auto rerouted = t.shortestPathUp(client, server);
  ASSERT_EQ(rerouted.size(), 3u);
  EXPECT_EQ(rerouted[1], other);

  // Kill the surviving link too: no route at all.
  t.setLinkHealth(other, server, topo::Health::kDown);
  EXPECT_TRUE(t.shortestPathUp(client, server).empty());
  // The wired path still exists.
  EXPECT_FALSE(t.shortestPath(client, server).empty());

  t.setLinkHealth(other, server, topo::Health::kUp);
  t.setNodeHealth(first, topo::Health::kUp);
  EXPECT_EQ(t.shortestPathUp(client, server), via);
}

TEST(TopoHealth, HealthViewSnapshotIsStable) {
  auto t = topo::Topology::chain({device::makeTofino()});
  const auto view = t.healthView();
  const int d0 = t.findNode("d0");
  t.setNodeHealth(d0, topo::Health::kDown);
  // The snapshot still sees the old world; live queries see the new one.
  EXPECT_EQ(view.nodeAt(d0), topo::Health::kUp);
  EXPECT_EQ(t.nodeHealth(d0), topo::Health::kDown);
  const auto path =
      t.shortestPathUp(t.findNode("client"), t.findNode("server"), &view);
  EXPECT_FALSE(path.empty());
}

// --- EC trees on degraded topologies ------------------------------------

TEST(EcHealth, DeadDeviceLeavesTheTree) {
  auto t = topo::Topology::chain({device::makeTofino(),
                                  device::makeTofino()});
  const auto spec = trafficFor(t, {"client"}, "server");
  const auto full = topo::buildEcTree(t, spec);
  std::set<int> full_devices;
  for (const auto& n : full.nodes) {
    full_devices.insert(n.devices.begin(), n.devices.end());
  }
  const int d0 = t.findNode("d0");
  EXPECT_TRUE(full_devices.count(d0));

  t.setNodeHealth(d0, topo::Health::kDraining);
  const auto degraded = topo::buildEcTree(t, spec);
  std::set<int> degraded_devices;
  for (const auto& n : degraded.nodes) {
    degraded_devices.insert(n.devices.begin(), n.devices.end());
  }
  EXPECT_FALSE(degraded_devices.count(d0));
}

TEST(EcHealth, SeveredPathThrowsUnavailableNotPlacement) {
  auto t = topo::Topology::chain({device::makeTofino()});
  const auto spec = trafficFor(t, {"client"}, "server");
  t.setNodeHealth(t.findNode("d0"), topo::Health::kDown);
  EXPECT_THROW(topo::buildEcTree(t, spec), UnavailableError);
}

// --- emulator drop reasons ----------------------------------------------

class FaultEmuFixture : public ::testing::Test {
 protected:
  FaultEmuFixture()
      : topo_(topo::Topology::chain(
            {device::makeTofino(), device::makeTofino()})),
        emu_(&topo_, 11),
        client_(topo_.findNode("client")),
        server_(topo_.findNode("server")),
        d0_(topo_.findNode("d0")),
        d1_(topo_.findNode("d1")) {}

  emu::PacketResult send(int user = -1) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr.value", 4);
    return emu_.send(client_, server_, std::move(view), 100, 100);
  }

  topo::Topology topo_;
  emu::Emulator emu_;
  int client_, server_, d0_, d1_;
};

TEST_F(FaultEmuFixture, DeadNodeDropsAtNodePreConvergence) {
  emu::EmulatorOptions opts;
  opts.reroute_on_failure = false;  // pre-convergence window
  emu_.setOptions(opts);
  topo_.setNodeHealth(d1_, topo::Health::kDown);
  const auto r = send();
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(r.drop_reason, emu::DropReason::kNodeDown);
  EXPECT_EQ(r.final_node, d1_);
  EXPECT_EQ(emu_.stats().packets_dropped_fault, 1u);
}

TEST_F(FaultEmuFixture, DeadLinkDropsBeforeChargingIt) {
  emu::EmulatorOptions opts;
  opts.reroute_on_failure = false;
  emu_.setOptions(opts);
  topo_.setLinkHealth(d0_, d1_, topo::Health::kDown);
  const auto r = send();
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(r.drop_reason, emu::DropReason::kLinkDown);
  EXPECT_EQ(r.final_node, d0_);
  EXPECT_DOUBLE_EQ(emu_.linkBusyNs(d0_, d1_), 0.0);
}

TEST_F(FaultEmuFixture, ConvergedRoutingReportsNoRoute) {
  // Default options reroute around failures; a chain has no detour.
  topo_.setNodeHealth(d1_, topo::Health::kDown);
  const auto r = send();
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(r.drop_reason, emu::DropReason::kNoRoute);
  EXPECT_EQ(r.final_node, client_);
  EXPECT_EQ(r.hops, 0);
}

TEST_F(FaultEmuFixture, DeployOnDeadDeviceIsUnavailable) {
  topo_.setNodeHealth(d0_, topo::Health::kDown);
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "p";
  emu::DeploymentEntry e;
  e.user_id = 1;
  e.prog = prog;
  EXPECT_THROW(emu_.deploy(d0_, std::move(e)), UnavailableError);
}

TEST(FaultEmu, PathMissingUsersProgramDropsUndeployed) {
  // Diamond fabric: the user's snippet lives on branch b, but routing
  // prefers branch a — silently skipping the program would fake INC
  // results, so the packet reports a structured kUndeployed drop. After
  // a kills over, rerouting finds b and the packet is served again.
  topo::Topology t;
  topo::Node host;
  host.name = "client";
  host.kind = topo::NodeKind::kHost;
  const int client = t.addNode(host);
  topo::Node sw;
  sw.kind = topo::NodeKind::kSwitch;
  sw.programmable = true;
  sw.model = device::makeTofino();
  sw.name = "a";
  const int a = t.addNode(sw);
  sw.name = "b";
  const int b = t.addNode(sw);
  host.name = "server";
  const int server = t.addNode(host);
  t.addLink(client, a);
  t.addLink(a, server);
  t.addLink(client, b);
  t.addLink(b, server);

  emu::Emulator emu(&t, 7);
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "count";
  prog->addField("hdr.value", 32);
  ir::StateObject s;
  s.name = "ctr";
  s.kind = ir::StateKind::kRegister;
  s.depth = 4;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("n", 32),
      {ir::Operand::constant(0, 8), ir::Operand::constant(1, 32)}, sid));

  const auto preferred = t.shortestPath(client, server)[1];
  const int off_path = preferred == a ? b : a;
  emu::DeploymentEntry e;
  e.user_id = 1;
  e.prog = prog;
  e.instr_idxs = {0};
  emu.deploy(off_path, std::move(e));

  auto probe = [&] {
    ir::PacketView view;
    view.user_id = 1;
    view.setField("hdr.value", 3);
    return emu.send(client, server, std::move(view), 100, 100);
  };

  const auto miss = probe();
  EXPECT_TRUE(miss.dropped);
  EXPECT_EQ(miss.drop_reason, emu::DropReason::kUndeployed);
  EXPECT_EQ(emu.stats().packets_dropped_undeployed, 1u);

  // Plain traffic (no user) still passes.
  ir::PacketView plain;
  plain.user_id = -1;
  EXPECT_TRUE(emu.send(client, server, std::move(plain), 100, 100).delivered);

  // Failover of the preferred branch reroutes onto the serving branch.
  t.setNodeHealth(preferred, topo::Health::kDown);
  const auto served = probe();
  EXPECT_TRUE(served.delivered);
  EXPECT_GT(served.inc_latency_ns, 0.0);
}

// --- deterministic fault injection --------------------------------------

TEST(FaultInjector, SameSeedSameActionSequence) {
  auto t1 = topo::Topology::paperEmulation();
  auto t2 = topo::Topology::paperEmulation();
  emu::FaultInjector inj1(&t1, 99);
  emu::FaultInjector inj2(&t2, 99);
  for (int i = 0; i < 25; ++i) {
    const auto a1 = inj1.step();
    const auto a2 = inj2.step();
    EXPECT_EQ(a1.kind, a2.kind) << "step " << i;
    EXPECT_EQ(a1.node, a2.node) << "step " << i;
    EXPECT_EQ(a1.link_a, a2.link_a) << "step " << i;
    EXPECT_EQ(a1.link_b, a2.link_b) << "step " << i;
  }
  EXPECT_EQ(inj1.history().size(), 25u);
}

TEST(FaultInjector, RespectsCapAndSparesHosts) {
  auto t = topo::Topology::paperEmulation();
  emu::FaultInjector::Options opts;
  opts.max_down = 2;
  emu::FaultInjector inj(&t, 5, opts);
  for (int i = 0; i < 60; ++i) {
    const auto a = inj.step();
    if (a.kind == emu::FaultAction::Kind::kKillNode ||
        a.kind == emu::FaultAction::Kind::kDrainNode) {
      EXPECT_NE(t.node(a.node).kind, topo::NodeKind::kHost);
    }
    int non_up = 0;
    for (const auto& n : t.nodes()) {
      if (t.nodeHealth(n.id) != topo::Health::kUp) ++non_up;
    }
    for (const auto& l : t.links()) {
      if (t.linkHealth(l.a, l.b) == topo::Health::kDown) ++non_up;
    }
    EXPECT_LE(non_up, opts.max_down);
  }
}

// --- service failover ---------------------------------------------------

TEST(ServiceFailover, KillReplacesTenantOffTheDeadDevice) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submit(dqaccRequest(svc.topology()));
  ASSERT_TRUE(r.ok) << r.error.message();
  const auto devices = planDeviceSet(r.plan);
  ASSERT_FALSE(devices.empty());
  const int victim = *devices.begin();

  const auto report = svc.failNode(victim);
  ASSERT_EQ(report.tenants.size(), 1u);
  const auto& rec = report.tenants[0];
  EXPECT_EQ(rec.user_id, r.user_id);
  EXPECT_TRUE(rec.outcome == RecoveryOutcome::kReplaced ||
              rec.outcome == RecoveryOutcome::kServerOnly)
      << toString(rec.outcome);
  EXPECT_GE(report.blast_radius_devices, 1);

  // The dead device holds no claims (occupancy wiped to fresh).
  EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(victim)),
            freshFingerprint(svc.topology().node(victim)));
  // The replacement avoids it.
  const auto& dep = svc.deployments().at(r.user_id);
  EXPECT_EQ(planDeviceSet(dep.plan).count(victim), 0u);
}

TEST(ServiceFailover, RecoveryMatchesFreshPlacementOnDegradedTopology) {
  // Recovered state must be bit-identical to submitting the same tenant
  // against the already-degraded fabric: same plan devices, same
  // occupancy fingerprints, same packet results on the surviving paths.
  // Converging MLAgg traffic places at the (redundant) core layer, so a
  // plan device can die without severing the fabric.
  auto request = [](const topo::Topology& topo) {
    return SubmitRequest::fromTemplate(
        "MLAgg",
        {{"NumAgg", 1024}, {"Dim", 16}, {"NumWorker", 2}, {"IsConvert", 0}},
        trafficFor(topo, {"pod0a", "pod1a"}, "pod2b"));
  };
  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto r = recovered.submit(request(recovered.topology()));
  ASSERT_TRUE(r.ok);
  // Pick a plan device whose death leaves an alternate healthy path —
  // severing the fabric entirely is the server-only test's territory.
  int victim = -1;
  for (int dev : planDeviceSet(r.plan)) {
    auto probe = recovered.topology();
    probe.setNodeHealth(dev, topo::Health::kDown);
    if (!probe.shortestPathUp(probe.findNode("pod0a"),
                              probe.findNode("pod2b")).empty()) {
      victim = dev;
      break;
    }
  }
  ASSERT_NE(victim, -1) << "plan has no device with a redundant path";
  const auto report = recovered.failNode(victim);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].outcome, RecoveryOutcome::kReplaced);

  ClickIncService fresh(topo::Topology::paperEmulation());
  fresh.failNode(victim);
  const auto f = fresh.submit(request(fresh.topology()));
  ASSERT_TRUE(f.ok) << f.error.message();

  EXPECT_EQ(planDeviceSet(recovered.deployments().at(r.user_id).plan),
            planDeviceSet(fresh.deployments().at(f.user_id).plan));
  EXPECT_EQ(allFingerprints(recovered), allFingerprints(fresh));

  const int src = recovered.topology().findNode("pod0a");
  const int dst = recovered.topology().findNode("pod2b");
  EXPECT_EQ(packetTrace(recovered.emulator(), src, dst, r.user_id, 6, 500),
            packetTrace(fresh.emulator(), src, dst, f.user_id, 6, 500));
}

TEST(ServiceFailover, SeveredFabricDegradesToServerOnlyThenUpgrades) {
  ClickIncService svc(topo::Topology::chain({device::makeTofino()}));
  const auto& topo = svc.topology();
  const int d0 = topo.findNode("d0");
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  ASSERT_TRUE(r.ok) << r.error.message();

  const auto down = svc.failNode(d0);
  ASSERT_EQ(down.tenants.size(), 1u);
  EXPECT_EQ(down.tenants[0].outcome, RecoveryOutcome::kServerOnly);
  // Program preserved; no switch claims anywhere.
  EXPECT_EQ(deployedUsers(svc), std::set<int>{r.user_id});
  EXPECT_TRUE(planDeviceSet(svc.deployments().at(r.user_id).plan).empty());
  EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(d0)),
            freshFingerprint(topo.node(d0)));

  // Heal: the device reboots empty and the tenant wins its switch back.
  const auto up = svc.healNode(d0);
  ASSERT_EQ(up.tenants.size(), 1u);
  EXPECT_EQ(up.tenants[0].outcome, RecoveryOutcome::kReplaced);
  EXPECT_FALSE(planDeviceSet(svc.deployments().at(r.user_id).plan).empty());

  ir::PacketView view;
  view.user_id = r.user_id;
  view.setField("hdr.value", 9);
  const auto probe = svc.emulator().send(topo.findNode("client"),
                                         topo.findNode("server"),
                                         std::move(view), 100, 100);
  EXPECT_TRUE(probe.delivered);
}

TEST(ServiceFailover, InfeasibleWithoutFallbackReleasesEverything) {
  ClickIncService svc(topo::Topology::chain({device::makeTofino()}));
  core::FailoverPolicy policy;
  policy.server_fallback = false;
  svc.setFailoverPolicy(policy);
  const auto& topo = svc.topology();
  const int d0 = topo.findNode("d0");
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  ASSERT_TRUE(r.ok);

  const auto report = svc.failNode(d0);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].outcome, RecoveryOutcome::kInfeasible);
  EXPECT_FALSE(report.tenants[0].error.ok());
  EXPECT_TRUE(svc.deployments().empty());
  for (const auto& n : topo.nodes()) {
    if (n.programmable) {
      EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                freshFingerprint(n));
    }
  }
}

TEST(ServiceFailover, DrainMigratesWithoutBreakingTraffic) {
  ClickIncService svc(topo::Topology::chain(
      {device::makeTofino(), device::makeTofino()}));
  const auto& topo = svc.topology();
  const int d0 = topo.findNode("d0");
  const int d1 = topo.findNode("d1");
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(planDeviceSet(r.plan).count(d0) ||
              planDeviceSet(r.plan).count(d1));

  const auto report = svc.drainNode(d0);
  // Draining still forwards packets; placements must leave the device.
  for (const auto& [u, dep] : svc.deployments()) {
    (void)u;
    EXPECT_EQ(planDeviceSet(dep.plan).count(d0), 0u);
  }
  EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(d0)),
            freshFingerprint(topo.node(d0)));
  if (!report.tenants.empty()) {
    EXPECT_NE(report.tenants[0].outcome, RecoveryOutcome::kInfeasible);
  }
  ir::PacketView view;
  view.user_id = -1;
  const auto probe = svc.emulator().send(topo.findNode("client"),
                                         topo.findNode("server"),
                                         std::move(view), 100, 100);
  EXPECT_TRUE(probe.delivered);  // drained device forwards plain traffic
}

TEST(ServiceFailover, SubmitOnSeveredFabricIsRetryableUnavailable) {
  ClickIncService svc(topo::Topology::chain(
      {device::makeTofino(), device::makeTofino()}));
  const auto& topo = svc.topology();
  svc.failLink(topo.findNode("d0"), topo.findNode("d1"));
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kUnavailable);
  EXPECT_TRUE(r.error.retryable);

  svc.healLink(topo.findNode("d0"), topo.findNode("d1"));
  const auto retry = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  EXPECT_TRUE(retry.ok) << retry.error.message();
}

// --- rollback on deploy failure (injected) ------------------------------

TEST(ServiceFailover, DeployFailureRollsBackByteIdentical) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto a = svc.submit(dqaccRequest(svc.topology()));
  ASSERT_TRUE(a.ok);

  const auto fps_before = allFingerprints(svc);
  const auto users_before = deployedUsers(svc);
  const int src = svc.topology().findNode("pod0a");
  const int dst = svc.topology().findNode("pod2b");
  const auto probe_before =
      packetTrace(svc.emulator(), src, dst, a.user_id, 4, 1000);

  svc.injectDeployFailureAfter(0);
  const auto b = svc.submit(mlaggRequest(svc.topology(), 1024));
  EXPECT_FALSE(b.ok);
  EXPECT_EQ(b.error.code, ErrorCode::kDeployFailed);
  EXPECT_EQ(b.error.stage, Stage::kDeploy);

  // Occupancy, tenant set, and packet behavior byte-identical to the
  // pre-submit snapshot.
  EXPECT_EQ(allFingerprints(svc), fps_before);
  EXPECT_EQ(deployedUsers(svc), users_before);
  // Fresh keys (base 2000) miss the cache exactly like the pre-snapshot
  // probes did, so identical behavior means identical deployed programs.
  EXPECT_EQ(packetTrace(svc.emulator(), src, dst, a.user_id, 4, 2000),
            probe_before);

  // The hook is single-shot: the same submission now succeeds.
  const auto c = svc.submit(mlaggRequest(svc.topology(), 1024));
  EXPECT_TRUE(c.ok) << c.error.message();
}

// --- retry / backoff ----------------------------------------------------

TEST(Retry, DelayScheduleIsPureAndBounded) {
  core::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_ms = 2.0;
  policy.multiplier = 2.0;
  policy.max_ms = 5.0;
  EXPECT_DOUBLE_EQ(policy.delayMs(1), 0.0);
  EXPECT_DOUBLE_EQ(policy.delayMs(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.delayMs(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.delayMs(4), 5.0);  // capped
  EXPECT_DOUBLE_EQ(policy.delayMs(5), 5.0);

  policy.jitter_seed = 9;
  const double j = policy.delayMs(3);
  EXPECT_GE(j, 4.0 * 0.75);
  EXPECT_LE(j, 4.0 * 1.25);
  EXPECT_DOUBLE_EQ(policy.delayMs(3), j);  // pure: same inputs, same delay
}

TEST(Retry, RetryableFailureConsumesTheAttemptBudget) {
  ClickIncService svc(topo::Topology::paperEmulation());
  // Fill the fabric until MLAgg no longer fits.
  core::SubmitResult last;
  for (int i = 0; i < 64; ++i) {
    last = svc.submit(mlaggRequest(svc.topology(), 100000));
    if (!last.ok) break;
  }
  ASSERT_FALSE(last.ok);
  ASSERT_EQ(last.error.code, ErrorCode::kResourceExhausted);
  EXPECT_TRUE(last.error.retryable);
  EXPECT_EQ(last.attempts, 1);  // no policy installed yet

  core::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_ms = 64.0;
  svc.setRetryPolicy(policy);
  const auto r = svc.submit(mlaggRequest(svc.topology(), 100000));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_DOUBLE_EQ(r.backoff_ms, policy.delayMs(2) + policy.delayMs(3));

  // Per-request override beats the service default.
  auto req = mlaggRequest(svc.topology(), 100000);
  req.retry.max_attempts = 2;
  const auto r2 = svc.submit(std::move(req));
  EXPECT_EQ(r2.attempts, 2);

  // Non-retryable failures never retry.
  lang::HeaderSpec hdr;
  hdr.add("value", 32);
  const auto parse = svc.submit(SubmitRequest::fromSource(
      "if hdr.value @@ 3:\n    fwd()\n", hdr, {},
      trafficFor(svc.topology(), {"pod0a"}, "pod2b")));
  EXPECT_EQ(parse.error.code, ErrorCode::kParseError);
  EXPECT_EQ(parse.attempts, 1);
}

// --- remove() vs in-flight submitAsync ----------------------------------

TEST(ServiceFailover, RemoveRacesInFlightSubmitCleanly) {
  for (int iter = 0; iter < 6; ++iter) {
    ClickIncService svc(topo::Topology::paperEmulation());
    svc.setConcurrency(4);
    const auto a = svc.submit(dqaccRequest(svc.topology()));
    ASSERT_TRUE(a.ok);
    auto ticket = svc.submitAsync(mlaggRequest(svc.topology(), 512));
    const auto rr = svc.remove(a.user_id);  // races the in-flight commit
    ticket.wait();
    EXPECT_TRUE(rr.ok);
    ASSERT_TRUE(ticket.get().ok) << ticket.get().error.message();
    EXPECT_EQ(deployedUsers(svc), std::set<int>{ticket.get().user_id});

    // Whatever the interleaving, removing the survivor returns every
    // claim: all occupancy byte-identical to fresh.
    ASSERT_TRUE(svc.remove(ticket.get().user_id).ok);
    for (const auto& n : svc.topology().nodes()) {
      if (n.programmable) {
        EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                  freshFingerprint(n));
      }
    }
  }
}

// --- chaos suite --------------------------------------------------------

// Scripted kill/heal churn interleaved with batched tenant churn. The
// whole trace — recovery outcomes, occupancy fingerprints, tenant sets,
// packet results — must be bit-identical across 1/2/8-thread pools, and
// no step may leak claims onto a dead device.
std::string chaosTrace(int threads) {
  ClickIncService svc(topo::Topology::paperEmulation());
  svc.setConcurrency(threads);
  svc.armFaultInjector(/*seed=*/7);

  std::string trace;
  std::set<int> live;
  const auto& topo = svc.topology();

  auto note_batch = [&](const std::vector<core::SubmitResult>& results) {
    for (const auto& r : results) {
      trace += cat("s", r.user_id, r.ok ? "+" : "-",
                   toString(r.error.code), ";");
      if (r.ok) live.insert(r.user_id);
    }
  };
  auto note_report = [&](const core::FailoverReport& rep) {
    trace += cat("F", rep.health_version, "b", rep.blast_radius_devices, "[");
    for (const auto& t : rep.tenants) {
      trace += cat(t.user_id, ":", toString(t.outcome), "p",
                   t.segments_pinned, "r", t.segments_replaced, ",");
      if (t.outcome == RecoveryOutcome::kInfeasible) live.erase(t.user_id);
    }
    trace += "];";
    // Invariant: dead devices hold zero claims.
    for (const auto& n : topo.nodes()) {
      if (n.programmable &&
          topo.nodeHealth(n.id) == topo::Health::kDown) {
        EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                  freshFingerprint(n))
            << "claims leaked on dead device " << n.name;
      }
    }
    // Invariant: no tenant silently lost.
    EXPECT_EQ(deployedUsers(svc), live);
  };

  for (int round = 0; round < 6; ++round) {
    std::vector<SubmitRequest> batch;
    batch.push_back(dqaccRequest(topo, "pod0a", "pod2b"));
    batch.push_back(mlaggRequest(topo, 256 + round * 64, "pod1a", "pod2a"));
    if (round % 2 == 0) {
      batch.push_back(dqaccRequest(topo, "pod1b", "pod0b"));
    }
    note_batch(svc.submitAll(std::move(batch)));

    note_report(svc.stepFault());
    if (round % 2 == 1) note_report(svc.stepFault());

    // Occasionally retire the oldest tenant (claims must come back).
    if (round % 3 == 2 && !live.empty()) {
      const int victim = *live.begin();
      trace += cat("x", victim, svc.remove(victim).ok ? "+" : "-", ";");
      live.erase(victim);
    }
  }

  // Close the loop: fingerprints + surviving-path packet results.
  for (std::uint64_t fp : allFingerprints(svc)) trace += cat(fp, ",");
  const int src = topo.findNode("pod0a");
  const int dst = topo.findNode("pod2b");
  for (int user : live) {
    trace += packetTrace(svc.emulator(), src, dst, user, 3);
  }

  // Teardown: removing every tenant leaves all surviving devices clean.
  for (int user : live) EXPECT_TRUE(svc.remove(user).ok);
  for (const auto& n : topo.nodes()) {
    if (n.programmable) {
      EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                freshFingerprint(n))
          << "claims leaked on " << n.name;
    }
  }
  return trace;
}

TEST(Chaos, RecoveryIsBitIdenticalAcrossThreadPools) {
  const std::string seq = chaosTrace(1);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(chaosTrace(2), seq);
  EXPECT_EQ(chaosTrace(8), seq);
}

// Unscripted stress: async churn racing applyFault() on another thread.
// Nondeterministic interleaving — asserts invariants only, and gives TSan
// real concurrency between the failover path and staged submissions.
TEST(Chaos, AsyncChurnSurvivesConcurrentFaults) {
  ClickIncService svc(topo::Topology::paperEmulation());
  svc.setConcurrency(4);
  emu::FaultInjector::Options opts;
  opts.max_down = 2;
  auto shadow = topo::Topology::paperEmulation();  // proposal source only
  emu::FaultInjector planner(&shadow, 13, opts);
  // Pre-draw a deterministic action script (the *application* below still
  // interleaves nondeterministically with the async submissions).
  std::vector<emu::FaultAction> script;
  for (int i = 0; i < 10; ++i) script.push_back(planner.step());

  std::vector<core::SubmissionTicket> tickets;
  std::size_t next_action = 0;
  for (int round = 0; round < 10; ++round) {
    tickets.push_back(svc.submitAsync(dqaccRequest(svc.topology())));
    tickets.push_back(
        svc.submitAsync(mlaggRequest(svc.topology(), 128 + round * 32)));
    svc.applyFault(script[next_action++]);
  }
  svc.waitForAsync();
  svc.processFailures();

  // Every ticket resolved with a structured outcome.
  std::set<int> ok_users;
  for (auto& t : tickets) {
    ASSERT_TRUE(t.done());
    const auto& r = t.get();
    if (r.ok) ok_users.insert(r.user_id);
    else EXPECT_NE(r.error.code, ErrorCode::kOk);
  }
  // Tenants present are exactly the committed-and-not-lost ones; every
  // deployment's devices are healthy or draining, never dead.
  for (const auto& [user, dep] : svc.deployments()) {
    EXPECT_TRUE(ok_users.count(user));
    for (int dev : planDeviceSet(dep.plan)) {
      EXPECT_NE(svc.topology().nodeHealth(dev), topo::Health::kDown);
    }
  }
  // Dead devices hold zero claims.
  for (const auto& n : svc.topology().nodes()) {
    if (n.programmable &&
        svc.topology().nodeHealth(n.id) == topo::Health::kDown) {
      EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                freshFingerprint(n));
    }
  }
  // Full teardown leaves every surviving device clean.
  const auto users = deployedUsers(svc);
  for (int user : users) EXPECT_TRUE(svc.remove(user).ok);
  for (const auto& n : svc.topology().nodes()) {
    if (n.programmable &&
        svc.topology().nodeHealth(n.id) != topo::Health::kDown) {
      EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(n.id)),
                freshFingerprint(n));
    }
  }
}

}  // namespace
}  // namespace clickinc
