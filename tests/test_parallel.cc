// Seeded determinism suites for the worker-pool fast paths: parallel
// placement plans and parallel emulator bursts must be bit-identical to
// their sequential references across 1/2/8-thread pools. CI additionally
// runs this binary under ThreadSanitizer (CLICKINC_TSAN) to prove the
// parallel schedules are race-free, not just deterministic-by-luck.
#include <gtest/gtest.h>

#include "core/service.h"
#include "emu/emulator.h"
#include "modules/templates.h"
#include "place/blockdag.h"
#include "place/treedp.h"
#include "topo/ec.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace clickinc {
namespace {

// --- placement: parallel plans == sequential plans, bit for bit ---

void expectPlacementsEqual(const place::IntraPlacement& a,
                           const place::IntraPlacement& b,
                           const std::string& where) {
  EXPECT_EQ(a.feasible, b.feasible) << where;
  EXPECT_EQ(a.instr_idxs, b.instr_idxs) << where;
  EXPECT_EQ(a.stage_of, b.stage_of) << where;
  EXPECT_EQ(a.stages_used, b.stages_used) << where;
}

// Exact (==, not near) comparison: the parallel path must produce the
// very same doubles, or it is not the same computation. `compare_steps`
// is off for the pipelined-submission suites: arena/memo warmth differs
// between the speculative and sequential paths (memoized placements
// report zero search steps), which changes step counters but never plan
// content.
void expectPlansIdentical(const place::PlacementPlan& par,
                          const place::PlacementPlan& seq,
                          bool compare_steps = true) {
  ASSERT_EQ(par.feasible, seq.feasible) << par.failure << seq.failure;
  EXPECT_EQ(par.gain, seq.gain);
  EXPECT_EQ(par.ht, seq.ht);
  EXPECT_EQ(par.hr, seq.hr);
  EXPECT_EQ(par.hp, seq.hp);
  if (compare_steps) EXPECT_EQ(par.steps, seq.steps);
  if (!par.feasible) return;
  ASSERT_EQ(par.assignments.size(), seq.assignments.size());
  for (std::size_t k = 0; k < par.assignments.size(); ++k) {
    const auto& pa = par.assignments[k];
    const auto& sa = seq.assignments[k];
    const std::string where = cat("assignment #", k);
    EXPECT_EQ(pa.tree_node, sa.tree_node) << where;
    EXPECT_EQ(pa.from_block, sa.from_block) << where;
    EXPECT_EQ(pa.to_block, sa.to_block) << where;
    EXPECT_EQ(pa.bypass_from, sa.bypass_from) << where;
    ASSERT_EQ(pa.on_device.size(), sa.on_device.size()) << where;
    for (const auto& [dev, sp] : sa.on_device) {
      auto it = pa.on_device.find(dev);
      ASSERT_NE(it, pa.on_device.end()) << where << " device " << dev;
      expectPlacementsEqual(it->second, sp, cat(where, " device ", dev));
    }
    ASSERT_EQ(pa.on_bypass.size(), sa.on_bypass.size()) << where;
    for (const auto& [dev, sp] : sa.on_bypass) {
      auto it = pa.on_bypass.find(dev);
      ASSERT_NE(it, pa.on_bypass.end()) << where << " bypass " << dev;
      expectPlacementsEqual(it->second, sp, cat(where, " bypass ", dev));
    }
  }
}

// Search counters must match too (threads_used / parallel_tasks describe
// the execution mode and are expected to differ).
void expectSearchStatsIdentical(const place::PlacementStats& par,
                                const place::PlacementStats& seq) {
  EXPECT_EQ(par.intra_calls, seq.intra_calls);
  EXPECT_EQ(par.intra_memo_hits, seq.intra_memo_hits);
  EXPECT_EQ(par.seg_probes, seq.seg_probes);
  EXPECT_EQ(par.seg_misses, seq.seg_misses);
  EXPECT_EQ(par.early_breaks, seq.early_breaks);
}

class ParallelPlacement : public ::testing::Test {
 protected:
  static std::vector<ir::IrProgram> programs() {
    modules::ModuleLibrary lib;
    std::vector<ir::IrProgram> progs;
    progs.push_back(lib.compileTemplate(
        "MLAgg", "agg",
        {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}}));
    progs.push_back(lib.compileTemplate(
        "KVS", "kvs", {{"CacheSize", 100000}, {"ValDim", 4}, {"TH", 64}}));
    return progs;
  }

  static topo::TrafficSpec specFor(const topo::Topology& topo,
                                   const std::vector<std::string>& srcs,
                                   const std::string& dst) {
    topo::TrafficSpec spec;
    for (const auto& s : srcs) spec.sources.push_back({topo.findNode(s), 10.0});
    spec.dst_host = topo.findNode(dst);
    return spec;
  }

  static void checkThreadCounts(const topo::Topology& topo,
                                const topo::TrafficSpec& spec) {
    for (const auto& prog : programs()) {
      SCOPED_TRACE(prog.name);
      const auto dag = place::BlockDag::build(prog);
      const auto tree = topo::buildEcTree(topo, spec);
      place::OccupancyMap occ(&topo);
      place::PlacementOptions seq_opts;  // fast, no pool
      const auto seq = place::placeProgram(dag, tree, topo, occ, seq_opts);
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(cat(threads, " threads"));
        util::ThreadPool pool(threads);
        place::PlacementOptions par_opts;
        par_opts.pool = &pool;
        const auto par = place::placeProgram(dag, tree, topo, occ, par_opts);
        expectPlansIdentical(par, seq);
        expectSearchStatsIdentical(par.stats, seq.stats);
        EXPECT_EQ(par.stats.threads_used, threads);
        if (threads > 1 && seq.feasible) {
          EXPECT_GT(par.stats.parallel_tasks, 0);
        }
      }
    }
  }
};

TEST_F(ParallelPlacement, PaperEmulationTopologyBitIdentical) {
  const auto topo = topo::Topology::paperEmulation();
  checkThreadCounts(topo, specFor(topo, {"pod0a", "pod1a"}, "pod2b"));
  checkThreadCounts(topo, specFor(topo, {"pod0a", "pod0b", "pod1b"}, "pod2a"));
}

TEST_F(ParallelPlacement, TofinoChainBitIdentical) {
  const std::vector<device::DeviceModel> chain(8, device::makeTofino());
  const auto topo = topo::Topology::chain(chain);
  checkThreadCounts(topo, specFor(topo, {"client"}, "server"));
}

TEST_F(ParallelPlacement, SharedArenaCommitsStayIdentical) {
  // The multi-program regime: one arena shared across trials while
  // commits change device occupancies. The parallel path must track the
  // sequential one trial by trial.
  const auto topo = topo::Topology::paperEmulation();
  const auto spec = specFor(topo, {"pod0a", "pod1a"}, "pod2b");
  const auto tree = topo::buildEcTree(topo, spec);
  util::ThreadPool pool(8);
  place::OccupancyMap occ_par(&topo);
  place::OccupancyMap occ_seq(&topo);
  place::PlacementArena arena_par;
  place::PlacementArena arena_seq;
  modules::ModuleLibrary lib;
  for (int k = 0; k < 3; ++k) {
    SCOPED_TRACE(cat("trial ", k));
    const auto prog = lib.compileTemplate(
        "MLAgg", cat("agg", k),
        {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}, {"IsConvert", 0}});
    const auto dag = place::BlockDag::build(prog);
    place::PlacementOptions par_opts;
    par_opts.pool = &pool;
    place::PlacementOptions seq_opts;
    const auto par =
        place::placeProgram(dag, tree, topo, occ_par, par_opts, &arena_par);
    const auto seq =
        place::placeProgram(dag, tree, topo, occ_seq, seq_opts, &arena_seq);
    expectPlansIdentical(par, seq);
    expectSearchStatsIdentical(par.stats, seq.stats);
    if (!seq.feasible) break;
    place::commitPlan(par, prog, occ_par);
    place::commitPlan(seq, prog, occ_seq);
  }
  EXPECT_EQ(arena_par.memo().hits(), arena_seq.memo().hits());
  EXPECT_EQ(arena_par.memo().misses(), arena_seq.memo().misses());
}

// --- service: the concurrency knob must not change any submission ---

TEST(ParallelService, ConcurrencySettingsProduceIdenticalDeployments) {
  auto submitAll = [](core::ClickIncService& svc) {
    std::vector<core::SubmitResult> out;
    auto traffic = [&](const std::vector<const char*>& srcs,
                       const char* dst) {
      topo::TrafficSpec spec;
      for (const char* s : srcs) {
        spec.sources.push_back({svc.topology().findNode(s), 10.0});
      }
      spec.dst_host = svc.topology().findNode(dst);
      return spec;
    };
    out.push_back(svc.submit(core::SubmitRequest::fromTemplate(
        "MLAgg", {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}},
        traffic({"pod0a", "pod1a"}, "pod2b"))));
    out.push_back(svc.submit(core::SubmitRequest::fromTemplate(
        "KVS", {{"CacheSize", 1024}, {"ValDim", 4}, {"TH", 32}},
        traffic({"pod0b", "pod1b"}, "pod2a"))));
    out.push_back(svc.submit(core::SubmitRequest::fromTemplate(
        "DQAcc", {{"CacheDepth", 1024}, {"CacheLen", 4}},
        traffic({"pod1a"}, "pod2b"))));
    return out;
  };

  core::ClickIncService seq(topo::Topology::paperEmulation());
  ASSERT_EQ(seq.concurrency(), 1);
  const auto seq_results = submitAll(seq);

  for (int threads : {2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    core::ClickIncService par(topo::Topology::paperEmulation());
    par.setConcurrency(threads);
    EXPECT_EQ(par.concurrency(), threads);
    const auto par_results = submitAll(par);
    ASSERT_EQ(par_results.size(), seq_results.size());
    for (std::size_t k = 0; k < seq_results.size(); ++k) {
      SCOPED_TRACE(cat("submission ", k));
      EXPECT_EQ(par_results[k].ok, seq_results[k].ok);
      expectPlansIdentical(par_results[k].plan, seq_results[k].plan);
      expectSearchStatsIdentical(par_results[k].plan.stats,
                                 seq_results[k].plan.stats);
      EXPECT_EQ(par_results[k].impact.affected_devices,
                seq_results[k].impact.affected_devices);
    }
    expectSearchStatsIdentical(par.placementStats(), seq.placementStats());
  }
}

// --- service: pipelined submitAll == sequential submits, bit for bit ---

// Defined in the emulation section below.
void expectResultsIdentical(const std::vector<emu::PacketResult>& a,
                            const std::vector<emu::PacketResult>& b);
void expectEmuStateIdentical(emu::Emulator& a, emu::Emulator& b,
                             const topo::Topology& topo,
                             const ir::IrProgram& prog);

// Five tenants: three distinct templates, one duplicate template on
// different traffic, and one failing request in the middle — the failure
// leaves an id gap, forcing the pipelined commit stage through its
// guessed-id correction path.
std::vector<core::SubmitRequest> tenantBatch(
    const core::ClickIncService& svc) {
  auto traffic = [&](const std::vector<const char*>& srcs, const char* dst) {
    topo::TrafficSpec spec;
    for (const char* s : srcs) {
      spec.sources.push_back({svc.topology().findNode(s), 10.0});
    }
    spec.dst_host = svc.topology().findNode(dst);
    return spec;
  };
  std::vector<core::SubmitRequest> reqs;
  reqs.push_back(core::SubmitRequest::fromTemplate(
      "MLAgg", {{"NumAgg", 512}, {"Dim", 8}, {"NumWorker", 2}},
      traffic({"pod0a", "pod1a"}, "pod2b")));
  reqs.push_back(core::SubmitRequest::fromTemplate(
      "KVS", {{"CacheSize", 1024}, {"ValDim", 4}, {"TH", 32}},
      traffic({"pod0b", "pod1b"}, "pod2a")));
  reqs.push_back(core::SubmitRequest::fromTemplate(
      "NoSuchTemplate", {}, traffic({"pod0a"}, "pod2b")));
  reqs.push_back(core::SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 1024}, {"CacheLen", 4}},
      traffic({"pod1a"}, "pod2b")));
  reqs.push_back(core::SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 512}, {"CacheLen", 2}},
      traffic({"pod0a"}, "pod2b")));
  return reqs;
}

// Duplicate-value stream through one deployed DQAcc tenant; the exact
// delivered/dropped/latency sequence is part of the bit-identity claim.
std::vector<emu::PacketResult> probeDqacc(core::ClickIncService& svc,
                                          int user, int src, int dst) {
  std::vector<emu::PacketResult> out;
  for (int i = 0; i < 48; ++i) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr._uid", static_cast<std::uint64_t>(user));
    view.setField("hdr.value", static_cast<std::uint64_t>(1 + (i * 7) % 19));
    out.push_back(svc.emulator().send(src, dst, std::move(view), 64, 4));
  }
  return out;
}

TEST(ParallelService, SubmitAllBitIdenticalToSequentialSubmits) {
  // Sequential reference: the same five requests, one submit() at a time.
  core::ClickIncService seq(topo::Topology::paperEmulation());
  std::vector<core::SubmitResult> seq_results;
  for (auto& req : tenantBatch(seq)) {
    seq_results.push_back(seq.submit(std::move(req)));
  }
  const int dq0_user = seq_results[3].user_id;
  const int dq1_user = seq_results[4].user_id;
  const int pod1a = seq.topology().findNode("pod1a");
  const int pod0a = seq.topology().findNode("pod0a");
  const int pod2b = seq.topology().findNode("pod2b");
  const auto seq_probe0 = probeDqacc(seq, dq0_user, pod1a, pod2b);
  const auto seq_probe1 = probeDqacc(seq, dq1_user, pod0a, pod2b);

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    core::ClickIncService par(topo::Topology::paperEmulation());
    par.setConcurrency(threads);
    const auto par_results = par.submitAll(tenantBatch(par));
    ASSERT_EQ(par_results.size(), seq_results.size());
    for (std::size_t k = 0; k < seq_results.size(); ++k) {
      SCOPED_TRACE(cat("request ", k));
      EXPECT_EQ(par_results[k].ok, seq_results[k].ok);
      EXPECT_EQ(par_results[k].user_id, seq_results[k].user_id);
      EXPECT_EQ(par_results[k].error.code, seq_results[k].error.code);
      expectPlansIdentical(par_results[k].plan, seq_results[k].plan,
                           /*compare_steps=*/false);
      EXPECT_EQ(par_results[k].impact.affected_devices,
                seq_results[k].impact.affected_devices);
      EXPECT_EQ(par_results[k].impact.affected_users,
                seq_results[k].impact.affected_users);
      EXPECT_EQ(par_results[k].impact.affected_pods,
                seq_results[k].impact.affected_pods);
    }

    // Occupancy: every programmable device ends bit-identical.
    for (const auto& node : seq.topology().nodes()) {
      if (!node.programmable) continue;
      EXPECT_EQ(place::occupancyFingerprint(par.occupancy().of(node.id)),
                place::occupancyFingerprint(seq.occupancy().of(node.id)))
          << "device " << node.name;
    }

    // Deployments: same users carrying byte-identical programs (names,
    // state prefixes, instructions).
    ASSERT_EQ(par.deployments().size(), seq.deployments().size());
    for (const auto& [user, dep] : seq.deployments()) {
      ASSERT_EQ(par.deployments().count(user), 1u) << "user " << user;
      EXPECT_EQ(par.deployments().at(user).prog->toString(),
                dep.prog->toString())
          << "user " << user;
    }

    // Emulator behavior: the deployed network processes identical
    // packet streams identically, and ends in the same state.
    const auto par_probe0 = probeDqacc(par, dq0_user, pod1a, pod2b);
    const auto par_probe1 = probeDqacc(par, dq1_user, pod0a, pod2b);
    expectResultsIdentical(par_probe0, seq_probe0);
    expectResultsIdentical(par_probe1, seq_probe1);
    expectEmuStateIdentical(par.emulator(), seq.emulator(), seq.topology(),
                            *seq.deployments().at(dq0_user).prog);
    expectEmuStateIdentical(par.emulator(), seq.emulator(), seq.topology(),
                            *seq.deployments().at(dq1_user).prog);
  }
}

// --- emulation: parallel sendBursts == sequential, bit for bit ---

// Stateful aggregator: acc[0] += hdr.value, drop every 3rd packet.
std::shared_ptr<ir::IrProgram> aggAndDropThird() {
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "agg3";
  prog->addField("hdr.value", 32);
  ir::StateObject s;
  s.name = "acc";
  s.kind = ir::StateKind::kRegister;
  s.depth = 2;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("sum", 32),
      {ir::Operand::constant(0, 8), ir::Operand::field("hdr.value", 32)},
      sid));
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("n", 32),
      {ir::Operand::constant(1, 8), ir::Operand::constant(1, 32)}, sid));
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kMod, ir::Operand::var("m", 32),
                      {ir::Operand::var("n", 32),
                       ir::Operand::constant(3, 32)}));
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kCmpEq, ir::Operand::var("third", 1),
                      {ir::Operand::var("m", 32),
                       ir::Operand::constant(0, 32)}));
  ir::Instruction drop(ir::Opcode::kDrop, ir::Operand::none(), {});
  drop.pred = ir::Operand::var("third", 1);
  prog->instrs.push_back(drop);
  return prog;
}

// k independent client_i - dev_i - server_i chains in one topology: the
// device-disjoint regime sendBursts parallelizes.
topo::Topology disjointChains(int k) {
  topo::Topology t;
  for (int i = 0; i < k; ++i) {
    topo::Node c;
    c.name = cat("client", i);
    c.kind = topo::NodeKind::kHost;
    const int cid = t.addNode(c);
    topo::Node d;
    d.name = cat("dev", i);
    d.kind = topo::NodeKind::kSwitch;
    d.programmable = true;
    d.model = device::makeTofino();
    const int did = t.addNode(d);
    topo::Node s;
    s.name = cat("server", i);
    s.kind = topo::NodeKind::kHost;
    const int sid = t.addNode(s);
    t.addLink(cid, did);
    t.addLink(did, sid);
  }
  return t;
}

std::vector<emu::Burst> makeBursts(const topo::Topology& topo, int flows,
                                   int packets, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<emu::Burst> bursts;
  for (int f = 0; f < flows; ++f) {
    emu::Burst b;
    b.src = topo.findNode(cat("client", f));
    b.dst = topo.findNode(cat("server", f));
    b.wire_bytes = 200;
    b.useful_bytes = 180;
    for (int p = 0; p < packets; ++p) {
      ir::PacketView view;
      view.user_id = 1;
      view.setField("hdr.value", rng.nextBelow(1u << 16));
      b.views.push_back(std::move(view));
    }
    bursts.push_back(std::move(b));
  }
  return bursts;
}

void expectResultsIdentical(const std::vector<emu::PacketResult>& a,
                            const std::vector<emu::PacketResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(cat("packet ", i));
    EXPECT_EQ(a[i].delivered, b[i].delivered);
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].bounced, b[i].bounced);
    EXPECT_EQ(a[i].final_node, b[i].final_node);
    EXPECT_EQ(a[i].hops, b[i].hops);
    EXPECT_EQ(a[i].wire_bytes_out, b[i].wire_bytes_out);
    EXPECT_EQ(a[i].latency_ns, b[i].latency_ns);          // exact
    EXPECT_EQ(a[i].inc_latency_ns, b[i].inc_latency_ns);  // exact
    EXPECT_EQ(a[i].view.params, b[i].view.params);
    EXPECT_EQ(a[i].view.fields, b[i].view.fields);
    EXPECT_EQ(a[i].view.verdict, b[i].view.verdict);
    EXPECT_EQ(a[i].view.mirrored, b[i].view.mirrored);
    EXPECT_EQ(a[i].view.cpu_copied, b[i].view.cpu_copied);
  }
}

void expectEmuStateIdentical(emu::Emulator& a, emu::Emulator& b,
                             const topo::Topology& topo,
                             const ir::IrProgram& prog) {
  EXPECT_EQ(a.stats().packets_sent, b.stats().packets_sent);
  EXPECT_EQ(a.stats().packets_delivered, b.stats().packets_delivered);
  EXPECT_EQ(a.stats().packets_dropped, b.stats().packets_dropped);
  EXPECT_EQ(a.stats().packets_bounced, b.stats().packets_bounced);
  EXPECT_EQ(a.stats().useful_bytes_delivered,
            b.stats().useful_bytes_delivered);
  EXPECT_EQ(a.stats().total_latency_ns, b.stats().total_latency_ns);
  EXPECT_EQ(a.stats().total_inc_latency_ns,
            b.stats().total_inc_latency_ns);
  for (const auto& link : topo.links()) {
    EXPECT_EQ(a.linkBusyNs(link.a, link.b), b.linkBusyNs(link.a, link.b))
        << "link " << link.a << "-" << link.b;
  }
  // Compare every state instance the program defines on every device.
  for (const auto& node : topo.nodes()) {
    if (!node.programmable) continue;
    for (const auto& spec : prog.states) {
      const auto* sa = a.storeOf(node.id).find(spec.name);
      const auto* sb = b.storeOf(node.id).find(spec.name);
      ASSERT_EQ(sa == nullptr, sb == nullptr)
          << spec.name << " on node " << node.id;
      if (sa == nullptr) continue;
      EXPECT_EQ(sa->entryCount(), sb->entryCount());
      for (std::uint64_t c = 0; c < spec.depth; ++c) {
        EXPECT_EQ(sa->regRead(c), sb->regRead(c))
            << spec.name << "[" << c << "] on node " << node.id;
      }
    }
  }
}

class ParallelEmulation : public ::testing::Test {
 protected:
  static constexpr int kFlows = 4;
  static constexpr int kPackets = 64;

  // Runs the same seeded multi-flow workload with and without a pool.
  static void runBoth(int threads, std::vector<emu::Burst> bursts,
                      const topo::Topology& topo, emu::Emulator& seq,
                      emu::Emulator& par) {
    auto prog = aggAndDropThird();
    for (int f = 0; f < kFlows; ++f) {
      const int dev = topo.findNode(cat("dev", f));
      emu::DeploymentEntry e;
      e.user_id = 1;
      e.prog = prog;
      for (std::size_t i = 0; i < prog->instrs.size(); ++i) {
        e.instr_idxs.push_back(static_cast<int>(i));
      }
      e.step_from = 0;
      e.step_to = 1;
      seq.deploy(dev, e);
      par.deploy(dev, e);
    }
    util::ThreadPool pool(threads);
    par.setThreadPool(&pool);
    auto bursts_copy = bursts;
    const auto seq_results = seq.sendBursts(std::move(bursts));
    const auto par_results = par.sendBursts(std::move(bursts_copy));
    ASSERT_EQ(seq_results.size(), par_results.size());
    for (std::size_t f = 0; f < seq_results.size(); ++f) {
      SCOPED_TRACE(cat("flow ", f));
      expectResultsIdentical(par_results[f], seq_results[f]);
    }
    expectEmuStateIdentical(par, seq, topo, *prog);
    par.setThreadPool(nullptr);
  }
};

TEST_F(ParallelEmulation, DisjointFlowsBitIdenticalAcrossThreadCounts) {
  const auto topo = disjointChains(kFlows);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    emu::Emulator seq(&topo, 11);
    emu::Emulator par(&topo, 11);
    runBoth(threads, makeBursts(topo, kFlows, kPackets, 0xAB5), topo, seq,
            par);
  }
}

TEST_F(ParallelEmulation, SendBurstsMatchesPerBurstSendBurstCalls) {
  const auto topo = disjointChains(kFlows);
  emu::Emulator one_by_one(&topo, 11);
  emu::Emulator batched(&topo, 11);
  util::ThreadPool pool(8);
  batched.setThreadPool(&pool);
  auto prog = aggAndDropThird();
  for (int f = 0; f < kFlows; ++f) {
    const int dev = topo.findNode(cat("dev", f));
    emu::DeploymentEntry e;
    e.user_id = 1;
    e.prog = prog;
    for (std::size_t i = 0; i < prog->instrs.size(); ++i) {
      e.instr_idxs.push_back(static_cast<int>(i));
    }
    e.step_from = 0;
    e.step_to = 1;
    one_by_one.deploy(dev, e);
    batched.deploy(dev, e);
  }
  auto bursts = makeBursts(topo, kFlows, kPackets, 0xF00D);
  auto bursts_copy = bursts;
  std::vector<std::vector<emu::PacketResult>> seq_results;
  for (auto& b : bursts) {
    seq_results.push_back(one_by_one.sendBurst(
        b.src, b.dst, std::move(b.views), b.wire_bytes, b.useful_bytes));
  }
  const auto par_results = batched.sendBursts(std::move(bursts_copy));
  ASSERT_EQ(par_results.size(), seq_results.size());
  for (std::size_t f = 0; f < seq_results.size(); ++f) {
    SCOPED_TRACE(cat("flow ", f));
    expectResultsIdentical(par_results[f], seq_results[f]);
  }
  expectEmuStateIdentical(batched, one_by_one, topo, *prog);
}

TEST_F(ParallelEmulation, AliasedPathsKeepSequentialOrder) {
  // Three bursts through ONE shared device: the pool must not reorder
  // them (the shared accumulator makes order observable), so they fall
  // back to ordered execution and match the sequential run exactly.
  const auto topo = topo::Topology::chain({device::makeTofino()});
  const int client = topo.findNode("client");
  const int server = topo.findNode("server");
  const int dev = topo.findNode("d0");
  auto prog = aggAndDropThird();
  auto deployTo = [&](emu::Emulator& emu) {
    emu::DeploymentEntry e;
    e.user_id = 1;
    e.prog = prog;
    for (std::size_t i = 0; i < prog->instrs.size(); ++i) {
      e.instr_idxs.push_back(static_cast<int>(i));
    }
    e.step_from = 0;
    e.step_to = 1;
    emu.deploy(dev, e);
  };
  auto makeAliased = [&] {
    std::vector<emu::Burst> bursts;
    Rng rng(0x1CE);
    for (int f = 0; f < 3; ++f) {
      emu::Burst b;
      b.src = client;
      b.dst = server;
      b.wire_bytes = 100;
      b.useful_bytes = 100;
      for (int p = 0; p < 20; ++p) {
        ir::PacketView view;
        view.user_id = 1;
        view.setField("hdr.value", rng.nextBelow(1u << 12));
        b.views.push_back(std::move(view));
      }
      bursts.push_back(std::move(b));
    }
    return bursts;
  };
  emu::Emulator seq(&topo, 7);
  emu::Emulator par(&topo, 7);
  util::ThreadPool pool(8);
  par.setThreadPool(&pool);
  deployTo(seq);
  deployTo(par);
  const auto seq_results = seq.sendBursts(makeAliased());
  const auto par_results = par.sendBursts(makeAliased());
  ASSERT_EQ(par_results.size(), seq_results.size());
  for (std::size_t f = 0; f < seq_results.size(); ++f) {
    SCOPED_TRACE(cat("burst ", f));
    expectResultsIdentical(par_results[f], seq_results[f]);
  }
  expectEmuStateIdentical(par, seq, topo, *prog);
}

TEST_F(ParallelEmulation, RandIntDeploymentForcesSequentialFallback) {
  // A RandInt snippet consumes the shared Rng; parallel bursts would
  // scramble the draw order, so sendBursts must take the sequential path
  // and match the pool-free emulator draw for draw.
  const auto topo = disjointChains(2);
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "randmark";
  prog->addField("hdr.value", 32);
  prog->instrs.push_back(
      ir::Instruction(ir::Opcode::kRandInt, ir::Operand::var("r", 16),
                      {ir::Operand::constant(1000, 16)}));
  auto deployTo = [&](emu::Emulator& emu) {
    for (int f = 0; f < 2; ++f) {
      emu::DeploymentEntry e;
      e.user_id = 1;
      e.prog = prog;
      e.instr_idxs = {0};
      e.step_from = 0;
      e.step_to = 1;
      emu.deploy(topo.findNode(cat("dev", f)), e);
    }
  };
  emu::Emulator seq(&topo, 99);
  emu::Emulator par(&topo, 99);
  util::ThreadPool pool(8);
  par.setThreadPool(&pool);
  deployTo(seq);
  deployTo(par);
  const auto seq_results = seq.sendBursts(makeBursts(topo, 2, 32, 0xD1E));
  const auto par_results = par.sendBursts(makeBursts(topo, 2, 32, 0xD1E));
  ASSERT_EQ(par_results.size(), seq_results.size());
  for (std::size_t f = 0; f < seq_results.size(); ++f) {
    SCOPED_TRACE(cat("flow ", f));
    expectResultsIdentical(par_results[f], seq_results[f]);
  }
}

// --- converging traffic: many-to-one flows through a shared device ---
//
// The pipelined sendBursts regime: every flow does private work on its
// own smartNIC, then meets the others on one aggregation switch. The
// shared switch serializes (per-device arrival order must be burst
// order), but NIC stages of different bursts overlap. These suites pin
// the bit-identity claim for exactly that schedule, across 1/2/8-thread
// pools, for both the pipelined executor and the pre-pipelining grouped
// fallback.

// client_i — nic_i (programmable) — shared switch — server.
topo::Topology convergingTopology(int k) {
  topo::Topology t;
  topo::Node sw;
  sw.name = "agg";
  sw.kind = topo::NodeKind::kSwitch;
  sw.programmable = true;
  sw.model = device::makeTofino();
  const int swid = t.addNode(sw);
  topo::Node server;
  server.name = "server";
  server.kind = topo::NodeKind::kHost;
  const int sid = t.addNode(server);
  t.addLink(swid, sid);
  for (int i = 0; i < k; ++i) {
    topo::Node c;
    c.name = cat("client", i);
    c.kind = topo::NodeKind::kHost;
    const int cid = t.addNode(c);
    topo::Node nic;
    nic.name = cat("nic", i);
    nic.kind = topo::NodeKind::kNic;
    nic.programmable = true;
    nic.model = device::makeNfp();
    const int nid = t.addNode(nic);
    t.addLink(cid, nid);
    t.addLink(nid, swid);
  }
  return t;
}

// Per-NIC preprocessor: count packets and fold the value (the sparse
// compression stand-in) — stateful, so every NIC's store is checked.
std::shared_ptr<ir::IrProgram> nicCompress() {
  auto prog = std::make_shared<ir::IrProgram>();
  prog->name = "niccomp";
  prog->addField("hdr.value", 32);
  ir::StateObject s;
  s.name = "nic_acc";
  s.kind = ir::StateKind::kRegister;
  s.depth = 2;
  const int sid = prog->addState(s);
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kRegAdd, ir::Operand::var("nseen", 32),
      {ir::Operand::constant(0, 8), ir::Operand::constant(1, 32)}, sid));
  prog->instrs.push_back(ir::Instruction(
      ir::Opcode::kAnd, ir::Operand::field("hdr.value", 32),
      {ir::Operand::field("hdr.value", 32),
       ir::Operand::constant(0xFFF, 32)}));
  return prog;
}

void deployConverging(emu::Emulator& emu, const topo::Topology& topo,
                      int flows,
                      const std::shared_ptr<ir::IrProgram>& nic_prog,
                      const std::shared_ptr<ir::IrProgram>& sw_prog) {
  auto entryFor = [](const std::shared_ptr<ir::IrProgram>& p) {
    emu::DeploymentEntry e;
    e.user_id = 1;
    e.prog = p;
    for (std::size_t i = 0; i < p->instrs.size(); ++i) {
      e.instr_idxs.push_back(static_cast<int>(i));
    }
    e.step_from = 0;
    e.step_to = 1;
    return e;
  };
  for (int f = 0; f < flows; ++f) {
    auto e = entryFor(nic_prog);
    emu.deploy(topo.findNode(cat("nic", f)), e);
  }
  // The switch runs the aggregation as step 1 so NIC-processed packets
  // still match its gate (step advances to 1 at the NIC).
  auto e = entryFor(sw_prog);
  e.step_from = 1;
  e.step_to = 2;
  emu.deploy(topo.findNode("agg"), e);
}

std::vector<emu::Burst> convergingBursts(const topo::Topology& topo,
                                         int flows, int packets,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<emu::Burst> bursts;
  for (int f = 0; f < flows; ++f) {
    emu::Burst b;
    b.src = topo.findNode(cat("client", f));
    b.dst = topo.findNode("server");
    b.wire_bytes = 128;
    b.useful_bytes = 100;
    for (int p = 0; p < packets; ++p) {
      ir::PacketView view;
      view.user_id = 1;
      view.setField("hdr.value", rng.nextBelow(1u << 16));
      b.views.push_back(std::move(view));
    }
    bursts.push_back(std::move(b));
  }
  return bursts;
}

class ConvergingEmulation : public ::testing::Test {
 protected:
  static constexpr int kFlows = 4;
  static constexpr int kPackets = 48;

  static void expectAllIdentical(
      const std::vector<std::vector<emu::PacketResult>>& par,
      const std::vector<std::vector<emu::PacketResult>>& seq) {
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t f = 0; f < seq.size(); ++f) {
      SCOPED_TRACE(cat("burst ", f));
      expectResultsIdentical(par[f], seq[f]);
    }
  }
};

TEST_F(ConvergingEmulation, ManyToOneBitIdenticalAcrossThreadCounts) {
  const auto topo = convergingTopology(kFlows);
  auto nic_prog = nicCompress();
  auto sw_prog = aggAndDropThird();
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    emu::Emulator seq(&topo, 5);
    emu::Emulator par(&topo, 5);
    deployConverging(seq, topo, kFlows, nic_prog, sw_prog);
    deployConverging(par, topo, kFlows, nic_prog, sw_prog);
    util::ThreadPool pool(threads);
    par.setThreadPool(&pool);
    const auto seq_results =
        seq.sendBursts(convergingBursts(topo, kFlows, kPackets, 0xC0F));
    const auto par_results =
        par.sendBursts(convergingBursts(topo, kFlows, kPackets, 0xC0F));
    expectAllIdentical(par_results, seq_results);
    expectEmuStateIdentical(par, seq, topo, *sw_prog);
    expectEmuStateIdentical(par, seq, topo, *nic_prog);
  }
}

TEST_F(ConvergingEmulation, MlaggManyToOneAggregationBitIdentical) {
  // The real MLAgg template on the shared switch: per-flow gradients
  // converge on one aggregator array; drops (absorbed gradients),
  // send-backs (completed aggregates), and the register state are all
  // part of the bit-identity claim.
  const auto topo = convergingTopology(kFlows);
  auto nic_prog = nicCompress();
  modules::ModuleLibrary lib;
  auto mlagg = std::make_shared<ir::IrProgram>(
      lib.compileTemplate("MLAgg", "agg_t", {{"NumAgg", 16},
                                             {"Dim", 4},
                                             {"NumWorker", 2},
                                             {"IsConvert", 0}}));
  auto makeMlaggBursts = [&] {
    Rng rng(0xA99);
    std::vector<emu::Burst> bursts;
    for (int f = 0; f < kFlows; ++f) {
      emu::Burst b;
      b.src = topo.findNode(cat("client", f));
      b.dst = topo.findNode("server");
      b.wire_bytes = 160;
      b.useful_bytes = 128;
      for (int p = 0; p < kPackets; ++p) {
        ir::PacketView view;
        view.user_id = 1;
        view.setField("hdr.op", 1);  // DATA
        view.setField("hdr.seq", rng.nextBelow(32));
        view.setField("hdr.bitmap", 1u << (f % 2));
        view.setField("hdr.overflow", 0);
        view.setField("hdr.value", rng.nextBelow(1u << 12));
        for (int d = 0; d < 4; ++d) {
          view.setField(cat("hdr.data.", d), rng.nextBelow(1u << 10));
        }
        b.views.push_back(std::move(view));
      }
      bursts.push_back(std::move(b));
    }
    return bursts;
  };
  for (int threads : {2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    emu::Emulator seq(&topo, 13);
    emu::Emulator par(&topo, 13);
    deployConverging(seq, topo, kFlows, nic_prog, mlagg);
    deployConverging(par, topo, kFlows, nic_prog, mlagg);
    util::ThreadPool pool(threads);
    par.setThreadPool(&pool);
    const auto seq_results = seq.sendBursts(makeMlaggBursts());
    const auto par_results = par.sendBursts(makeMlaggBursts());
    expectAllIdentical(par_results, seq_results);
    expectEmuStateIdentical(par, seq, topo, *mlagg);
    expectEmuStateIdentical(par, seq, topo, *nic_prog);
  }
}

TEST_F(ConvergingEmulation, PartiallyOverlappingPathsKeepDeviceOrder) {
  // h0 -> A -> B -> C -> h1, with extra sources entering at B and C:
  // bursts share devices at *different* hop indices, exercising the
  // staggered cross-burst ordering edges of the segment DAG.
  topo::Topology t;
  topo::Node h0, h1, hb, hc;
  h0.name = "h0";
  h1.name = "h1";
  hb.name = "hb";
  hc.name = "hc";
  for (auto* h : {&h0, &h1, &hb, &hc}) h->kind = topo::NodeKind::kHost;
  const int id_h0 = t.addNode(h0);
  const int id_h1 = t.addNode(h1);
  const int id_hb = t.addNode(hb);
  const int id_hc = t.addNode(hc);
  std::vector<int> devs;
  for (int i = 0; i < 3; ++i) {
    topo::Node d;
    d.name = cat("D", i);
    d.kind = topo::NodeKind::kSwitch;
    d.programmable = true;
    d.model = device::makeTofino();
    devs.push_back(t.addNode(d));
  }
  t.addLink(id_h0, devs[0]);
  t.addLink(devs[0], devs[1]);
  t.addLink(devs[1], devs[2]);
  t.addLink(devs[2], id_h1);
  t.addLink(id_hb, devs[1]);
  t.addLink(id_hc, devs[2]);

  auto prog = aggAndDropThird();
  auto deployTo = [&](emu::Emulator& emu) {
    for (int dev : devs) {
      emu::DeploymentEntry e;
      e.user_id = 1;
      e.prog = prog;
      for (std::size_t i = 0; i < prog->instrs.size(); ++i) {
        e.instr_idxs.push_back(static_cast<int>(i));
      }
      e.step_from = 0;
      e.step_to = 1;
      emu.deploy(dev, e);
    }
  };
  auto makeStaggered = [&] {
    Rng rng(0x57A6);
    std::vector<emu::Burst> bursts;
    const std::pair<int, int> flows[] = {
        {id_h0, id_h1}, {id_hb, id_h1}, {id_hc, id_h1}, {id_h0, id_h1}};
    for (const auto& [src, dst] : flows) {
      emu::Burst b;
      b.src = src;
      b.dst = dst;
      b.wire_bytes = 96;
      b.useful_bytes = 64;
      for (int p = 0; p < 24; ++p) {
        ir::PacketView view;
        view.user_id = 1;
        view.setField("hdr.value", rng.nextBelow(1u << 14));
        b.views.push_back(std::move(view));
      }
      bursts.push_back(std::move(b));
    }
    return bursts;
  };
  for (int threads : {2, 8}) {
    SCOPED_TRACE(cat(threads, " threads"));
    emu::Emulator seq(&t, 21);
    emu::Emulator par(&t, 21);
    deployTo(seq);
    deployTo(par);
    util::ThreadPool pool(threads);
    par.setThreadPool(&pool);
    const auto seq_results = seq.sendBursts(makeStaggered());
    const auto par_results = par.sendBursts(makeStaggered());
    expectAllIdentical(par_results, seq_results);
    expectEmuStateIdentical(par, seq, t, *prog);
  }
}

TEST_F(ConvergingEmulation, PipelineKnobOffFallsBackToGroupedPath) {
  // pipeline_bursts == false must reproduce the pre-pipelining executor:
  // still bit-identical to sequential (aliasing bursts serialize whole).
  const auto topo = convergingTopology(kFlows);
  auto nic_prog = nicCompress();
  auto sw_prog = aggAndDropThird();
  emu::Emulator seq(&topo, 31);
  emu::Emulator par(&topo, 31);
  deployConverging(seq, topo, kFlows, nic_prog, sw_prog);
  deployConverging(par, topo, kFlows, nic_prog, sw_prog);
  par.setOptions({.fuse_plans = true, .pipeline_bursts = false});
  util::ThreadPool pool(8);
  par.setThreadPool(&pool);
  const auto seq_results =
      seq.sendBursts(convergingBursts(topo, kFlows, kPackets, 0x9A7));
  const auto par_results =
      par.sendBursts(convergingBursts(topo, kFlows, kPackets, 0x9A7));
  expectAllIdentical(par_results, seq_results);
  expectEmuStateIdentical(par, seq, topo, *sw_prog);
}

TEST_F(ConvergingEmulation, FusionKnobDoesNotChangeEmulation) {
  // fuse_plans on/off must be invisible end to end — including the
  // latency model, which charges per *source* instruction.
  const auto topo = convergingTopology(kFlows);
  auto nic_prog = nicCompress();
  auto sw_prog = aggAndDropThird();
  emu::Emulator fused(&topo, 17);
  emu::Emulator plain(&topo, 17);
  plain.setOptions({.fuse_plans = false, .pipeline_bursts = true});
  deployConverging(fused, topo, kFlows, nic_prog, sw_prog);
  deployConverging(plain, topo, kFlows, nic_prog, sw_prog);
  const auto fused_results =
      fused.sendBursts(convergingBursts(topo, kFlows, kPackets, 0xFA5));
  const auto plain_results =
      plain.sendBursts(convergingBursts(topo, kFlows, kPackets, 0xFA5));
  expectAllIdentical(fused_results, plain_results);
  expectEmuStateIdentical(fused, plain, topo, *sw_prog);
}

}  // namespace
}  // namespace clickinc
