// Durable control plane (docs/recovery.md): journal wire format and torn
// tails, checkpoint/restore, recover() replay equivalence, compensating
// aborts, flap damping, epoch fencing of in-flight submissions across
// 1/2/8-thread pools, and the crash-point recovery fuzzer.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "core/service.h"
#include "durable/journal.h"
#include "durable/serialize.h"
#include "place/intradevice.h"
#include "topo/ec.h"
#include "topo/topology.h"
#include "util/error.h"
#include "verify/recovery_fuzz.h"

namespace clickinc {
namespace {

using core::ClickIncService;
using core::ErrorCode;
using core::RecoveryOutcome;
using core::Stage;
using core::SubmitRequest;
using core::SubmissionTicket;

topo::TrafficSpec trafficFor(const topo::Topology& topo,
                             const std::vector<std::string>& srcs,
                             const std::string& dst) {
  topo::TrafficSpec spec;
  for (const auto& s : srcs) {
    spec.sources.push_back({topo.findNode(s), 10.0});
  }
  spec.dst_host = topo.findNode(dst);
  return spec;
}

SubmitRequest dqaccRequest(const topo::Topology& topo,
                           std::uint64_t depth = 128,
                           const std::string& src = "pod0a",
                           const std::string& dst = "pod2b") {
  return SubmitRequest::fromTemplate("DQAcc",
                                     {{"CacheDepth", depth}, {"CacheLen", 2}},
                                     trafficFor(topo, {src}, dst));
}

std::vector<std::uint64_t> allFingerprints(ClickIncService& svc) {
  std::vector<std::uint64_t> fps;
  for (const auto& n : svc.topology().nodes()) {
    if (n.programmable) {
      fps.push_back(place::occupancyFingerprint(svc.occupancy().of(n.id)));
    }
  }
  return fps;
}

std::set<int> deployedUsers(const ClickIncService& svc) {
  std::set<int> users;
  for (const auto& [u, d] : svc.deployments()) {
    (void)d;
    users.insert(u);
  }
  return users;
}

std::set<int> planDeviceSet(const place::PlacementPlan& plan) {
  std::set<int> devs;
  for (const auto& a : plan.assignments) {
    for (const auto& [dev, p] : a.on_device) {
      if (!p.instr_idxs.empty()) devs.insert(dev);
    }
    for (const auto& [dev, p] : a.on_bypass) {
      if (!p.instr_idxs.empty()) devs.insert(dev);
    }
  }
  return devs;
}

// Byte-level identity of two services' durable cores: occupancy ledger,
// tenant set + plan fingerprints, emulator deployment table.
void expectSameState(ClickIncService& a, ClickIncService& b) {
  EXPECT_EQ(allFingerprints(a), allFingerprints(b));
  ASSERT_EQ(deployedUsers(a), deployedUsers(b));
  for (const auto& [user, dep] : a.deployments()) {
    EXPECT_EQ(durable::planFingerprint(dep.plan),
              durable::planFingerprint(b.deployments().at(user).plan))
        << "plan fingerprint diverges for user " << user;
  }
  EXPECT_EQ(a.emulator().deploymentDigest(), b.emulator().deploymentDigest());
}

// --- journal wire format -------------------------------------------------

TEST(Journal, AppendScanRoundTrip) {
  durable::MemJournalSink sink;
  durable::writeMagic(sink);
  const std::vector<std::uint8_t> p1 = {1, 2, 3};
  const std::vector<std::uint8_t> p2 = {};
  durable::appendRecord(sink, 1, durable::RecordType::kCommit, p1);
  durable::appendRecord(sink, 2, durable::RecordType::kRemove, p2);

  const auto scan = durable::scanJournal(sink.readAll());
  EXPECT_TRUE(scan.magic_ok);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].type, durable::RecordType::kCommit);
  EXPECT_EQ(scan.records[0].payload, p1);
  EXPECT_EQ(scan.records[1].seq, 2u);
  EXPECT_EQ(scan.records[1].type, durable::RecordType::kRemove);
  EXPECT_TRUE(scan.records[1].payload.empty());
  EXPECT_EQ(scan.clean_end, sink.size());
}

TEST(Journal, TornTailYieldsCleanPrefix) {
  durable::MemJournalSink sink;
  durable::writeMagic(sink);
  durable::appendRecord(sink, 1, durable::RecordType::kCommit,
                        std::vector<std::uint8_t>{9, 9});
  const std::uint64_t clean = sink.size();
  durable::appendRecord(sink, 2, durable::RecordType::kRemove,
                        std::vector<std::uint8_t>{7});
  auto bytes = sink.readAll();
  bytes.resize(bytes.size() - 3);  // crash mid-append: CRC half-written

  const auto scan = durable::scanJournal(bytes);
  EXPECT_TRUE(scan.magic_ok);
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.clean_end, clean);
}

TEST(Journal, CorruptionStopsTheScan) {
  durable::MemJournalSink sink;
  durable::writeMagic(sink);
  durable::appendRecord(sink, 1, durable::RecordType::kCommit,
                        std::vector<std::uint8_t>{1});
  durable::appendRecord(sink, 2, durable::RecordType::kHealth,
                        std::vector<std::uint8_t>{2});
  auto bytes = sink.readAll();
  const auto whole = durable::scanJournal(bytes);
  ASSERT_EQ(whole.records.size(), 2u);
  // Flip one byte inside the second record's body: its CRC must reject it.
  bytes[static_cast<std::size_t>(whole.records[1].offset) + 6] ^= 0xFF;
  const auto scan = durable::scanJournal(bytes);
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.clean_end, whole.records[0].end);
}

TEST(Journal, BadMagicScansEmpty) {
  const std::vector<std::uint8_t> junk = {'n', 'o', 't', 'a', 'j', 'r', 'n',
                                          'l', 0, 1, 2};
  const auto scan = durable::scanJournal(junk);
  EXPECT_FALSE(scan.magic_ok);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.clean_end, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST(Journal, FileSinkSurvivesReopenAndTruncates) {
  const std::string path = "recovery_journal_test.bin";
  std::remove(path.c_str());
  {
    durable::FileJournalSink sink(path);
    EXPECT_EQ(sink.size(), 0u);
    durable::writeMagic(sink);
    durable::appendRecord(sink, 1, durable::RecordType::kCommit,
                          std::vector<std::uint8_t>{5, 6});
  }
  durable::FileJournalSink reopened(path);
  EXPECT_GT(reopened.size(), 8u);
  const auto scan = durable::scanJournal(reopened.readAll());
  EXPECT_TRUE(scan.magic_ok);
  ASSERT_EQ(scan.records.size(), 1u);

  reopened.truncate(8);  // keep just the magic
  EXPECT_EQ(reopened.size(), 8u);
  const auto empty = durable::scanJournal(reopened.readAll());
  EXPECT_TRUE(empty.magic_ok);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn);
  std::remove(path.c_str());
}

// --- replay equivalence --------------------------------------------------

TEST(Recovery, ReplayMatchesTheOriginalRun) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto a = primary.submit(dqaccRequest(primary.topology(), 128));
  ASSERT_TRUE(a.ok) << a.error.message();
  const auto b = primary.submit(
      dqaccRequest(primary.topology(), 256, "pod1a", "pod2b"));
  ASSERT_TRUE(b.ok) << b.error.message();
  primary.remove(a.user_id);

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&sink);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_TRUE(rep.verify.ok());
  EXPECT_FALSE(rep.from_checkpoint);
  EXPECT_EQ(rep.records_replayed, 3u);  // commit, commit, remove
  EXPECT_EQ(rep.tenants_restored, 1);
  EXPECT_TRUE(recovered.journalAttached());
  expectSameState(recovered, primary);

  // The recovered service keeps journaling: new submissions land with the
  // same ids the primary would have assigned.
  const auto c = recovered.submit(dqaccRequest(recovered.topology(), 64));
  ASSERT_TRUE(c.ok) << c.error.message();
  EXPECT_EQ(c.user_id, b.user_id + 1);
}

TEST(Recovery, CheckpointAnchorsTheReplay) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto a = primary.submit(dqaccRequest(primary.topology(), 128));
  ASSERT_TRUE(a.ok);
  primary.checkpoint();
  const auto b = primary.submit(
      dqaccRequest(primary.topology(), 256, "pod1a", "pod2b"));
  ASSERT_TRUE(b.ok);

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&sink);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_TRUE(rep.from_checkpoint);
  EXPECT_EQ(rep.records_replayed, 1u);  // only b's commit, after the anchor
  EXPECT_EQ(rep.tenants_restored, 2);
  expectSameState(recovered, primary);
}

TEST(Recovery, FailoverBatchesReplayThroughTheSamePipeline) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto r = primary.submit(dqaccRequest(primary.topology()));
  ASSERT_TRUE(r.ok);
  const auto devices = planDeviceSet(r.plan);
  ASSERT_FALSE(devices.empty());
  primary.failNode(*devices.begin());

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&sink);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_FALSE(rep.completed_failover);  // kFailover summary was present
  expectSameState(recovered, primary);
}

TEST(Recovery, CrashBeforeFailoverSummaryCompletesTheBatch) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto r = primary.submit(dqaccRequest(primary.topology()));
  ASSERT_TRUE(r.ok);
  const auto devices = planDeviceSet(r.plan);
  ASSERT_FALSE(devices.empty());
  primary.failNode(*devices.begin());

  // Cut the journal right after the kHealth record, losing the kFailover
  // summary — the crash window between write-ahead and write-behind.
  const auto bytes = sink.readAll();
  const auto scan = durable::scanJournal(bytes);
  ASSERT_GE(scan.records.size(), 2u);
  ASSERT_EQ(scan.records[scan.records.size() - 1].type,
            durable::RecordType::kFailover);
  ASSERT_EQ(scan.records[scan.records.size() - 2].type,
            durable::RecordType::kHealth);
  durable::MemJournalSink cut;
  cut.setBytes(std::vector<std::uint8_t>(
      bytes.begin(),
      bytes.begin() + static_cast<std::ptrdiff_t>(
                          scan.records[scan.records.size() - 2].end)));

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&cut);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_TRUE(rep.completed_failover);
  expectSameState(recovered, primary);
  // The healing kFailover record was appended, so the next recovery
  // replays it instead of re-completing.
  ClickIncService again(topo::Topology::paperEmulation());
  const auto rep2 = again.recover(&cut);
  ASSERT_TRUE(rep2.ok) << rep2.error.message();
  EXPECT_FALSE(rep2.completed_failover);
  expectSameState(again, primary);
}

TEST(Recovery, AbortCompensatesATornCommit) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto a = primary.submit(dqaccRequest(primary.topology(), 128));
  ASSERT_TRUE(a.ok);
  primary.injectDeployFailureAfter(0);
  const auto bad = primary.submit(dqaccRequest(primary.topology(), 256));
  ASSERT_FALSE(bad.ok);

  const auto scan = durable::scanJournal(sink.readAll());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[1].type, durable::RecordType::kCommit);
  EXPECT_EQ(scan.records[2].type, durable::RecordType::kAbort);

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&sink);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  expectSameState(recovered, primary);
  // The aborted commit's id was never published; both services hand the
  // same id to the next tenant.
  const auto p = primary.submit(dqaccRequest(primary.topology(), 64));
  const auto q = recovered.submit(dqaccRequest(recovered.topology(), 64));
  ASSERT_TRUE(p.ok);
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(p.user_id, q.user_id);
}

TEST(Recovery, TornTailIsTruncatedAndTheJournalStaysUsable) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto a = primary.submit(dqaccRequest(primary.topology(), 128));
  ASSERT_TRUE(a.ok);
  const std::uint64_t boundary = sink.size();
  const auto b = primary.submit(
      dqaccRequest(primary.topology(), 256, "pod1a", "pod2b"));
  ASSERT_TRUE(b.ok);

  // Crash mid-append of b's commit record.
  auto bytes = sink.readAll();
  durable::MemJournalSink cut;
  cut.setBytes(std::vector<std::uint8_t>(
      bytes.begin(),
      bytes.begin() + static_cast<std::ptrdiff_t>(boundary + 11)));

  ClickIncService recovered(topo::Topology::paperEmulation());
  const auto rep = recovered.recover(&cut);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_TRUE(rep.torn_tail);
  EXPECT_EQ(rep.tenants_restored, 1);
  EXPECT_EQ(cut.size(), boundary);  // tail dropped before re-attach

  // Appends resume cleanly after the truncated prefix: re-submit b, then
  // a third recovery must see both tenants.
  const auto b2 = recovered.submit(
      dqaccRequest(recovered.topology(), 256, "pod1a", "pod2b"));
  ASSERT_TRUE(b2.ok);
  expectSameState(recovered, primary);
  ClickIncService again(topo::Topology::paperEmulation());
  const auto rep2 = again.recover(&cut);
  ASSERT_TRUE(rep2.ok) << rep2.error.message();
  EXPECT_FALSE(rep2.torn_tail);
  expectSameState(again, primary);
}

TEST(Recovery, GarbageJournalRecoversToAnEmptyServiceWithAFreshJournal) {
  durable::MemJournalSink sink;
  sink.setBytes({'g', 'a', 'r', 'b', 'a', 'g', 'e', '!', 1, 2, 3});
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto rep = svc.recover(&sink);
  ASSERT_TRUE(rep.ok) << rep.error.message();
  EXPECT_TRUE(rep.torn_tail);
  EXPECT_EQ(rep.tenants_restored, 0);
  EXPECT_TRUE(svc.journalAttached());
  // The sink was reinitialized: magic only, then new records land.
  const auto r = svc.submit(dqaccRequest(svc.topology()));
  ASSERT_TRUE(r.ok);
  const auto scan = durable::scanJournal(sink.readAll());
  EXPECT_TRUE(scan.magic_ok);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, durable::RecordType::kCommit);
}

TEST(Recovery, UnreplayableRecordFailsStructuredAndLeavesServiceUsable) {
  durable::MemJournalSink sink;
  durable::writeMagic(sink);
  durable::RemoveRecord rr;
  rr.user = 7;  // never committed: replay must refuse, not guess
  durable::appendRecord(sink, 1, durable::RecordType::kRemove,
                        durable::encodeRemove(rr));

  ClickIncService svc(topo::Topology::paperEmulation());
  const auto rep = svc.recover(&sink);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.error.code, ErrorCode::kRecovery);
  EXPECT_EQ(rep.error.stage, Stage::kRecovery);
  EXPECT_FALSE(svc.journalAttached());
  EXPECT_TRUE(svc.deployments().empty());
  // The failed recovery left a fresh, working service behind.
  const auto r = svc.submit(dqaccRequest(svc.topology()));
  EXPECT_TRUE(r.ok) << r.error.message();
}

TEST(Recovery, AttachRequiresAFreshServiceAndSink) {
  ClickIncService used(topo::Topology::paperEmulation());
  ASSERT_TRUE(used.submit(dqaccRequest(used.topology())).ok);
  durable::MemJournalSink sink;
  EXPECT_THROW(used.attachJournal(&sink), InternalError);

  durable::MemJournalSink full;
  durable::writeMagic(full);
  durable::appendRecord(full, 1, durable::RecordType::kRemove,
                        durable::encodeRemove(durable::RemoveRecord{}));
  ClickIncService fresh(topo::Topology::paperEmulation());
  EXPECT_THROW(fresh.attachJournal(&full), InternalError);

  ClickIncService nojournal(topo::Topology::paperEmulation());
  EXPECT_THROW(nojournal.checkpoint(), InternalError);
}

// --- epoch fencing of in-flight work -------------------------------------

TEST(Recovery, InFlightSubmissionIsFencedByTheEpoch) {
  for (int threads : {1, 2, 8}) {
    durable::MemJournalSink sink;
    ClickIncService svc(topo::Topology::paperEmulation());
    svc.setConcurrency(threads);
    svc.attachJournal(&sink);
    const auto a = svc.submit(dqaccRequest(svc.topology(), 128));
    ASSERT_TRUE(a.ok);

    // Hold an async submission between snapshot and compile, recover the
    // service out from under it, then let it run to commit.
    std::promise<void> reached, release;
    auto reached_f = reached.get_future();
    auto release_f = release.get_future().share();
    bool gate_armed = true;
    svc.setCompileGate([&reached, release_f, &gate_armed]() mutable {
      if (!gate_armed) return;
      gate_armed = false;
      reached.set_value();
      release_f.wait();
    });
    SubmissionTicket ticket = svc.submitAsync(dqaccRequest(svc.topology(), 256));
    reached_f.wait();
    svc.setCompileGate(nullptr);

    const std::uint64_t before = svc.epoch();
    const auto rep = svc.recover(&sink);
    ASSERT_TRUE(rep.ok) << rep.error.message();
    EXPECT_EQ(svc.epoch(), before + 1);
    EXPECT_EQ(rep.tenants_restored, 1);

    release.set_value();
    const auto& r = ticket.get();
    ASSERT_FALSE(r.ok) << "threads=" << threads;
    EXPECT_EQ(r.error.code, ErrorCode::kUnavailable);
    EXPECT_EQ(r.error.stage, Stage::kCommit);
    EXPECT_TRUE(r.error.retryable);

    // The fenced tenant never landed; a retry against the recovered
    // service works and the restored tenant is intact.
    EXPECT_EQ(deployedUsers(svc), std::set<int>{a.user_id});
    const auto retry = svc.submit(dqaccRequest(svc.topology(), 256));
    EXPECT_TRUE(retry.ok) << retry.error.message();
  }
}

TEST(Recovery, RemoveAfterRecoverySeesTheRestoredWorld) {
  durable::MemJournalSink sink;
  ClickIncService primary(topo::Topology::paperEmulation());
  primary.attachJournal(&sink);
  const auto a = primary.submit(dqaccRequest(primary.topology(), 128));
  const auto b = primary.submit(
      dqaccRequest(primary.topology(), 256, "pod1a", "pod2b"));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  primary.remove(b.user_id);

  ClickIncService svc(topo::Topology::paperEmulation());
  ASSERT_TRUE(svc.recover(&sink).ok);
  // b was removed before the crash: its id is unknown, structured.
  const auto gone = svc.remove(b.user_id);
  EXPECT_FALSE(gone.ok);
  EXPECT_EQ(gone.error.code, ErrorCode::kUnknownUser);
  // a survives and removes cleanly, journaled for the next recovery.
  EXPECT_TRUE(svc.remove(a.user_id).ok);
  ClickIncService again(topo::Topology::paperEmulation());
  ASSERT_TRUE(again.recover(&sink).ok);
  EXPECT_TRUE(again.deployments().empty());
}

// --- flap damping --------------------------------------------------------

TEST(FlapDamping, HealInsideTheWindowIsDeferredThenFires) {
  // Drain transitions keep the chain forwarding while excluding a device
  // from placement, so every step has a live path and the damping effect
  // is isolated from route severing.
  ClickIncService svc(
      topo::Topology::chain({device::makeTofino(), device::makeTofino2()}));
  core::FailoverPolicy pol;
  pol.flap_window = 1;
  svc.setFailoverPolicy(pol);
  const auto& topo = svc.topology();
  const int d0 = topo.findNode("d0");
  const int d1 = topo.findNode("d1");
  const auto r = svc.submit(SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 64}, {"CacheLen", 2}},
      trafficFor(topo, {"client"}, "server")));
  ASSERT_TRUE(r.ok) << r.error.message();

  const auto down = svc.drainNode(d0);  // version 1: disturbance
  EXPECT_EQ(down.damped_events, 0);
  EXPECT_EQ(planDeviceSet(svc.deployments().at(r.user_id).plan),
            std::set<int>{d1});

  // version 2: heal lands 1 <= window after the disturbance -> deferred.
  // The tenant must NOT bounce back to d0 yet.
  const auto up = svc.healNode(d0);
  EXPECT_EQ(up.damped_events, 1);
  EXPECT_TRUE(up.tenants.empty());
  EXPECT_EQ(planDeviceSet(svc.deployments().at(r.user_id).plan),
            std::set<int>{d1});

  // version 3: unrelated disturbance pushes d0 past its quiet window —
  // the deferred heal fires in this very batch, and with d1 now draining
  // the re-placement lands back on the healed d0.
  const auto fire = svc.drainNode(d1);
  EXPECT_EQ(fire.damped_events, 0);
  ASSERT_EQ(fire.tenants.size(), 1u);
  EXPECT_EQ(fire.tenants[0].user_id, r.user_id);
  EXPECT_EQ(fire.tenants[0].outcome, RecoveryOutcome::kReplaced);
  EXPECT_EQ(planDeviceSet(svc.deployments().at(r.user_id).plan),
            std::set<int>{d0});
  EXPECT_TRUE(svc.verifyDeployments().ok());
}

TEST(FlapDamping, DampedRebootStillWipesTheDevice) {
  ClickIncService svc(topo::Topology::paperEmulation());
  core::FailoverPolicy pol;
  pol.flap_window = 8;
  svc.setFailoverPolicy(pol);
  const auto r = svc.submit(dqaccRequest(svc.topology()));
  ASSERT_TRUE(r.ok);
  const auto devices = planDeviceSet(r.plan);
  ASSERT_FALSE(devices.empty());
  const int victim = *devices.begin();

  svc.failNode(victim);
  const auto up = svc.healNode(victim);  // damped: no upgrade yet
  EXPECT_EQ(up.damped_events, 1);
  // But the reboot is real: the device came back empty immediately.
  EXPECT_EQ(place::occupancyFingerprint(svc.occupancy().of(victim)),
            place::occupancyFingerprint(
                place::DeviceOccupancy::fresh(svc.topology().node(victim).model)));
  EXPECT_TRUE(svc.verifyDeployments().ok());
}

TEST(FlapDamping, ZeroWindowKeepsTheOldBehaviour) {
  ClickIncService svc(topo::Topology::paperEmulation());
  const auto r = svc.submit(dqaccRequest(svc.topology()));
  ASSERT_TRUE(r.ok);
  const auto devices = planDeviceSet(r.plan);
  ASSERT_FALSE(devices.empty());
  svc.failNode(*devices.begin());
  const auto up = svc.healNode(*devices.begin());
  EXPECT_EQ(up.damped_events, 0);
  ASSERT_EQ(up.tenants.size(), 1u);  // immediate upgrade, no deferral
}

TEST(FlapDamping, InjectorChurnStaysAuditCleanWithAWindow) {
  ClickIncService svc(topo::Topology::paperEmulation());
  core::FailoverPolicy pol;
  pol.flap_window = 3;
  svc.setFailoverPolicy(pol);
  ASSERT_TRUE(svc.submit(dqaccRequest(svc.topology(), 128)).ok);
  ASSERT_TRUE(
      svc.submit(dqaccRequest(svc.topology(), 256, "pod1a", "pod2b")).ok);
  svc.armFaultInjector(1234);
  for (int i = 0; i < 12; ++i) {
    const auto rep = svc.stepFault();
    EXPECT_TRUE(rep.verify.ok()) << "step " << i << ": "
                                 << rep.verify.summary();
  }
  EXPECT_TRUE(svc.verifyDeployments().ok());
}

// --- crash-point fuzzer --------------------------------------------------

TEST(RecoveryFuzz, SeededScenariosSurviveEveryCrashPoint) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto out = verify::fuzzRecoveryOnce(seed);
    ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.failure;
    EXPECT_GT(out.cuts, 0) << "seed " << seed;
    EXPECT_EQ(out.audits, out.cuts) << "seed " << seed;
    EXPECT_GT(out.compared, 0) << "seed " << seed;
    EXPECT_GT(out.torn_cuts, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace clickinc
