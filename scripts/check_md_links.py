#!/usr/bin/env python3
"""Docs hygiene: fail on broken intra-repo markdown links.

Scans README.md and docs/**/*.md (plus any extra paths given as
arguments) for inline links/images `[text](target)` and
reference-style links `[text][ref]` with their `[ref]: target`
definitions. For relative targets, checks the file exists; for
`file#anchor` (or `#anchor`) targets, checks the anchor matches a
heading in the target file using GitHub's slugging rules — dangling
intra-doc anchors fail the run. A `[text][ref]` whose `ref` has no
definition is reported too. External (scheme://, mailto:) links are
skipped — CI must not depend on the network.

Exit status: 0 clean, 1 any broken link. Stdlib only.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [text][ref] / [text][] / bare [ref] (shortcut); deliberately loose —
# candidates whose ref has an existing definition are resolved, the rest
# of the bare-[word] noise is ignored unless it *looks* like a reference
# (matched against the collected definitions).
REF_LINK_RE = re.compile(r"!?\[([^\]]+)\]\[([^\]]*)\]")
REF_DEF_RE = re.compile(r"^\s{0,3}\[([^\]]+)\]:\s*(\S+)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def heading_anchors(path):
    """GitHub-style slugs for every heading in a markdown file."""
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence or not line.startswith("#"):
                continue
            text = line.lstrip("#").strip()
            # Strip inline markdown: links, emphasis, code spans.
            text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
            text = re.sub(r"[`*_]", "", text)
            slug = text.lower()
            slug = re.sub(r"[^\w\- ]", "", slug)
            slug = slug.replace(" ", "-")
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def ref_definitions(path):
    """Collect `[ref]: target` definitions (case-insensitive refs)."""
    defs = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = REF_DEF_RE.match(line)
            if m:
                defs[m.group(1).lower()] = m.group(2)
    return defs


def iter_links(path):
    """Yields (lineno, target, kind); kind is 'link' or 'undefined-ref'."""
    defs = ref_definitions(path)
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            if REF_DEF_RE.match(line):
                continue  # the definition itself is checked via its uses
            # Drop inline code spans before matching links.
            stripped = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(1), "link"
            # Strip inline links so their [text] parts don't double as
            # reference candidates.
            remainder = LINK_RE.sub("", stripped)
            for m in REF_LINK_RE.finditer(remainder):
                ref = (m.group(2) or m.group(1)).lower()
                if ref in defs:
                    yield lineno, defs[ref], "link"
                else:
                    yield lineno, m.group(0), "undefined-ref"


def check_file(md_path, repo_root):
    errors = []
    for lineno, target, kind in iter_links(md_path):
        if kind == "undefined-ref":
            errors.append((lineno, target, "undefined reference"))
            continue
        if EXTERNAL_RE.match(target):
            continue
        target_path, _, anchor = target.partition("#")
        if target_path:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), target_path))
            if not os.path.exists(resolved):
                errors.append((lineno, target, "missing file"))
                continue
        else:
            resolved = md_path
        if anchor and resolved.endswith(".md"):
            if anchor not in heading_anchors(resolved):
                errors.append((lineno, target, "missing anchor"))
    return errors


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = sys.argv[1:]
    if not targets:
        targets = [os.path.join(repo_root, "README.md")]
        docs = os.path.join(repo_root, "docs")
        for dirpath, _, files in os.walk(docs):
            targets.extend(
                os.path.join(dirpath, f) for f in files if f.endswith(".md"))

    broken = 0
    checked = 0
    for md in sorted(targets):
        if not os.path.exists(md):
            print(f"SKIP {md} (not found)")
            continue
        checked += 1
        for lineno, target, why in check_file(md, repo_root):
            rel = os.path.relpath(md, repo_root)
            print(f"BROKEN {rel}:{lineno}: ({why}) -> {target}")
            broken += 1
    print(f"checked {checked} file(s), {broken} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
