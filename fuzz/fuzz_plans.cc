// Standalone driver for the plan-verifier fuzz harness (verify/fuzz.h).
//
//   fuzz_plans [--seeds N] [--start S] [--out FILE] [--no-mutations]
//              [--fault-steps K]
//
// Runs seeds [S, S+N) through fuzzOnce. On the first failing seed, prints
// the failure, writes the seed (and failure text) to FILE so CI can
// upload it as an artifact, and exits non-zero. Reproduce a failure with
//   fuzz_plans --start <seed> --seeds 1
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "verify/fuzz.h"

int main(int argc, char** argv) {
  std::uint64_t seeds = 50;
  std::uint64_t start = 1;
  std::string out_file;
  clickinc::verify::FuzzOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--no-mutations") {
      opts.mutations = false;
    } else if (arg == "--fault-steps") {
      opts.fault_steps = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  long checkpoints = 0, fired = 0, skipped = 0, checks = 0, deployed = 0;
  long fired_by[clickinc::verify::kNumMutations] = {};
  for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
    const auto outcome = clickinc::verify::fuzzOnce(seed, opts);
    checkpoints += outcome.checkpoints;
    fired += outcome.mutations_fired;
    skipped += outcome.mutations_skipped;
    checks += outcome.checks;
    deployed += outcome.tenants_deployed;
    for (int m = 0; m < clickinc::verify::kNumMutations; ++m) {
      fired_by[m] += outcome.fired_by[m];
    }
    if (!outcome.ok) {
      std::cerr << "FAIL seed " << seed << ": " << outcome.failure << "\n"
                << "reproduce: fuzz_plans --start " << seed
                << " --seeds 1\n";
      if (!out_file.empty()) {
        std::ofstream f(out_file);
        f << "seed=" << seed << "\n" << outcome.failure << "\n";
      }
      return 1;
    }
  }
  std::cout << seeds << " seeds clean: " << checkpoints
            << " clean audits, " << deployed << " tenants deployed, "
            << fired << " mutations detected (" << skipped
            << " skipped for lack of an eligible site), " << checks
            << " verifier checks total\n";
  for (int m = 0; m < clickinc::verify::kNumMutations; ++m) {
    std::cout << "  " << clickinc::verify::toString(
                             static_cast<clickinc::verify::Mutation>(m))
              << ": " << fired_by[m] << " detected\n";
  }
  return 0;
}
