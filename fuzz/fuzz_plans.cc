// Standalone driver for the fuzz harnesses (verify/fuzz.h and
// verify/recovery_fuzz.h).
//
//   fuzz_plans [--seeds N] [--start S] [--out FILE] [--no-mutations]
//              [--fault-steps K] [--recovery]
//
// Default mode runs seeds [S, S+N) through the differential plan-verifier
// harness (fuzzOnce). --recovery runs the crash-point recovery harness
// (fuzzRecoveryOnce) instead: every seed journals a scripted scenario,
// then recovers from a crash at every record boundary and torn offset.
//
// On the first failing seed, prints the failure, writes the seed (and
// failure text) to FILE so CI can upload it as an artifact, and exits
// non-zero. Reproduce a failure with
//   fuzz_plans [--recovery] --start <seed> --seeds 1
//
// In the default mode a sweep of >= 20 seeds also fails if any mutation
// injector never found an eligible site across the whole sweep — a
// wedged injector would silently stop testing its invariant.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "verify/fuzz.h"
#include "verify/recovery_fuzz.h"

namespace {

int runRecovery(std::uint64_t start, std::uint64_t seeds,
                const std::string& out_file) {
  long ops = 0, records = 0, cuts = 0, torn = 0, audits = 0, compared = 0;
  long mutations = 0, rejected = 0, failed_closed = 0, mut_clean = 0;
  long ckpt_mut = 0, ckpt_fc = 0, ckpt_clean = 0;
  long defrag_ops = 0, migrate_records = 0;
  for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
    const auto outcome = clickinc::verify::fuzzRecoveryOnce(seed);
    ops += outcome.ops;
    records += outcome.records;
    cuts += outcome.cuts;
    torn += outcome.torn_cuts;
    audits += outcome.audits;
    compared += outcome.compared;
    mutations += outcome.mutations;
    rejected += outcome.mutations_rejected;
    failed_closed += outcome.mutations_failed_closed;
    mut_clean += outcome.mutations_clean;
    ckpt_mut += outcome.ckpt_mutations;
    ckpt_fc += outcome.ckpt_failed_closed;
    ckpt_clean += outcome.ckpt_clean;
    defrag_ops += outcome.defrag_ops;
    migrate_records += outcome.migrate_records;
    if (!outcome.ok) {
      std::cerr << "FAIL seed " << seed << ": " << outcome.failure << "\n"
                << "reproduce: fuzz_plans --recovery --start " << seed
                << " --seeds 1\n";
      if (!out_file.empty()) {
        std::ofstream f(out_file);
        f << "mode=recovery\nseed=" << seed << "\n"
          << outcome.failure << "\n";
      }
      return 1;
    }
  }
  std::cout << seeds << " recovery seeds clean: " << ops << " ops, "
            << records << " journal records, " << cuts
            << " crash points (" << torn << " torn), " << audits
            << " clean post-recovery audits, " << compared
            << " bit-identical prefix matches; " << mutations
            << " byte mutations (" << rejected << " rejected by framing, "
            << failed_closed << " failed closed, " << mut_clean
            << " recovered clean)\n"
            << "  checkpoint-file mutations: " << ckpt_mut << " ("
            << ckpt_fc << " failed closed, " << ckpt_clean
            << " recovered clean)\n"
            << "  defrag coverage: " << defrag_ops << " scripted passes, "
            << migrate_records << " migrate/migrate-abort records\n";
  // Starvation gates mirroring the default mode: a sweep long enough to
  // expect coverage must actually exercise the checkpoint-payload
  // injectors and land cuts inside migration runs.
  if (seeds >= 20 && (ckpt_mut == 0 || migrate_records == 0)) {
    std::cerr << "FAIL: recovery sweep starved ("
              << (ckpt_mut == 0 ? "no checkpoint-payload mutation sites"
                                : "no migrate records journaled")
              << " across the sweep)\n";
    if (!out_file.empty()) {
      std::ofstream f(out_file);
      f << "mode=recovery\nstarved sweep across seeds [" << start << ", "
        << start + seeds << ")\n";
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 50;
  std::uint64_t start = 1;
  std::string out_file;
  bool recovery = false;
  clickinc::verify::FuzzOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--no-mutations") {
      opts.mutations = false;
    } else if (arg == "--fault-steps") {
      opts.fault_steps = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--recovery") {
      recovery = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  if (recovery) return runRecovery(start, seeds, out_file);

  long checkpoints = 0, fired = 0, skipped = 0, checks = 0, deployed = 0;
  long fired_by[clickinc::verify::kNumMutations] = {};
  long skipped_by[clickinc::verify::kNumMutations] = {};
  for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
    const auto outcome = clickinc::verify::fuzzOnce(seed, opts);
    checkpoints += outcome.checkpoints;
    fired += outcome.mutations_fired;
    skipped += outcome.mutations_skipped;
    checks += outcome.checks;
    deployed += outcome.tenants_deployed;
    for (int m = 0; m < clickinc::verify::kNumMutations; ++m) {
      fired_by[m] += outcome.fired_by[m];
      skipped_by[m] += outcome.skipped_by[m];
    }
    if (!outcome.ok) {
      std::cerr << "FAIL seed " << seed << ": " << outcome.failure << "\n"
                << "reproduce: fuzz_plans --start " << seed
                << " --seeds 1\n";
      if (!out_file.empty()) {
        std::ofstream f(out_file);
        f << "seed=" << seed << "\n" << outcome.failure << "\n";
      }
      return 1;
    }
  }
  std::cout << seeds << " seeds clean: " << checkpoints
            << " clean audits, " << deployed << " tenants deployed, "
            << fired << " mutations detected (" << skipped
            << " skipped for lack of an eligible site), " << checks
            << " verifier checks total\n";
  bool starved = false;
  for (int m = 0; m < clickinc::verify::kNumMutations; ++m) {
    std::cout << "  " << clickinc::verify::toString(
                             static_cast<clickinc::verify::Mutation>(m))
              << ": " << fired_by[m] << " detected, " << skipped_by[m]
              << " skipped\n";
    if (opts.mutations && seeds >= 20 && fired_by[m] == 0) starved = true;
  }
  if (starved) {
    std::cerr << "FAIL: a mutation injector found zero eligible sites "
                 "across the sweep (its invariant went untested)\n";
    if (!out_file.empty()) {
      std::ofstream f(out_file);
      f << "starved mutation injector across seeds [" << start << ", "
        << start + seeds << ")\n";
    }
    return 1;
  }
  return 0;
}
