// Multi-tenant INC as a service (§6): two users deploy instances of the
// same template; ClickINC isolates their state and control flow, merges
// their snippets with the operator's base program, and removes one tenant
// incrementally without touching the other.
//
//   $ ./multi_tenant
#include <cstdio>

#include "backend/codegen.h"
#include "core/service.h"

int main() {
  using namespace clickinc;
  core::ClickIncService svc(topo::Topology::paperEmulation());

  topo::TrafficSpec spec;
  spec.sources = {{svc.topology().findNode("pod0a"), 10.0}};
  spec.dst_host = svc.topology().findNode("pod2b");

  const auto tenant_a = svc.submit(core::SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 256}, {"CacheLen", 2}}, spec));
  const auto tenant_b = svc.submit(core::SubmitRequest::fromTemplate(
      "DQAcc", {{"CacheDepth", 256}, {"CacheLen", 2}}, spec));
  if (!tenant_a.ok || !tenant_b.ok) {
    std::printf("placement failed\n");
    return 1;
  }
  std::printf("tenant A = user %d, tenant B = user %d\n", tenant_a.user_id,
              tenant_b.user_id);

  // Both tenants see the same value stream; their rolling caches must not
  // alias (memory isolation) and each only reacts to its own traffic
  // (control-flow isolation).
  const int src = svc.topology().findNode("pod0a");
  const int dst = svc.topology().findNode("pod2b");
  auto probe = [&](int user, std::uint64_t value) {
    ir::PacketView view;
    view.user_id = user;
    view.setField("hdr._uid", static_cast<std::uint64_t>(user));
    view.setField("hdr.value", value);
    const auto pkt = svc.emulator().send(src, dst, std::move(view), 64, 4);
    return pkt.dropped ? "filtered (duplicate)" : "forwarded";
  };
  std::printf("A sends 99:  %s\n", probe(tenant_a.user_id, 99));
  std::printf("A sends 99:  %s\n", probe(tenant_a.user_id, 99));
  std::printf("B sends 99:  %s  <- B's cache is isolated from A's\n",
              probe(tenant_b.user_id, 99));

  // The synthesized device program carries both tenants plus the base.
  const int dev = *tenant_a.impact.affected_devices.begin();
  auto& dp = svc.deviceProgram(dev);
  std::printf("\ndevice %s runs %zu merged instructions for users:",
              svc.topology().node(dev).name.c_str(),
              dp.executable().instrs.size());
  for (int u : dp.activeUsers()) std::printf(" %d", u);
  std::printf("\nparser tree: %d header nodes\n", dp.parser().nodeCount());

  // Remove tenant A incrementally; tenant B keeps working untouched.
  svc.remove(tenant_a.user_id);
  std::printf("\nafter removing tenant A:\n");
  std::printf("B sends 99:  %s  <- B's state survived A's removal\n",
              probe(tenant_b.user_id, 99));
  std::printf("B sends 42:  %s\n", probe(tenant_b.user_id, 42));

  // What the operator would compile for this device now.
  std::printf("\n--- merged Micro-C for %s (%d LoC) ---\n",
              svc.topology().node(dev).name.c_str(),
              backend::generatedLoc(backend::Target::kMicroC,
                                    dp.executable()));
  return 0;
}
