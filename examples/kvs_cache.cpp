// In-network key-value cache (NetCache-style, paper §2.1) end to end:
// submit the KVS template against the Fig. 11 topology, let ClickINC place
// it (the data-plane-written cache lands on an NFP NIC or bypass FPGA —
// Tofino cannot host BSEM tables), then drive a Zipf workload and watch
// the hit ratio climb as the controller installs hot keys.
//
//   $ ./kvs_cache
#include <cstdio>

#include "apps/workloads.h"
#include "core/service.h"

int main() {
  using namespace clickinc;
  core::ClickIncService svc(topo::Topology::paperEmulation());

  apps::KvsConfig cfg;
  cfg.client_hosts = {svc.topology().findNode("pod0a"),
                      svc.topology().findNode("pod1a")};
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.queries = 4000;
  cfg.keyspace = 2048;
  cfg.zipf = 1.2;
  cfg.cache_size = 128;
  cfg.hot_threshold = 6;

  const auto r = apps::runKvs(svc, cfg);
  if (!r.deployed) {
    std::printf("placement failed: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("KVS over %d queries (Zipf %.2f, keyspace %llu, cache %llu)\n",
              cfg.queries, cfg.zipf,
              static_cast<unsigned long long>(cfg.keyspace),
              static_cast<unsigned long long>(cfg.cache_size));
  std::printf("  cache hits:   %llu (hit ratio %.1f%%)\n",
              static_cast<unsigned long long>(r.hits), 100 * r.hit_ratio);
  std::printf("  misses:       %llu\n",
              static_cast<unsigned long long>(r.misses));
  std::printf("  hit latency:  %.0f ns (round trip from the cache device)\n",
              r.avg_hit_latency_ns);
  std::printf("  miss latency: %.0f ns (full round trip via the server)\n",
              r.avg_miss_latency_ns);
  std::printf("  speedup:      %.2fx per hot query\n",
              r.avg_miss_latency_ns / r.avg_hit_latency_ns);
  return 0;
}
