// SQL DISTINCT acceleration (paper Appendix A.1): the DQAcc template's
// hash-bucketed rolling cache drops duplicate values in the network before
// they reach the database server.
//
//   $ ./dqacc_distinct
#include <cstdio>

#include "apps/workloads.h"
#include "core/service.h"

int main() {
  using namespace clickinc;
  core::ClickIncService svc(topo::Topology::paperEmulation());

  apps::DqaccConfig cfg;
  cfg.client_host = svc.topology().findNode("pod0a");
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.stream_len = 10000;
  cfg.distinct_values = 800;
  cfg.cache_depth = 2048;
  cfg.cache_len = 4;

  const auto r = apps::runDqacc(svc, cfg);
  if (!r.deployed) {
    std::printf("placement failed: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("DISTINCT stream of %d values (%llu distinct):\n",
              cfg.stream_len,
              static_cast<unsigned long long>(cfg.distinct_values));
  std::printf("  forwarded to server: %llu\n",
              static_cast<unsigned long long>(r.forwarded));
  std::printf("  filtered in-network: %llu\n",
              static_cast<unsigned long long>(r.filtered));
  std::printf("  duplicate catch rate: %.1f%%\n", 100 * r.dedup_ratio);
  std::printf("  server load reduction: %.1f%%\n",
              100 * r.server_load_reduction);
  return 0;
}
