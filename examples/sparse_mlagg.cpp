// The paper's flagship user program (Fig. 7): sparse gradient aggregation
// built on the MLAgg template. ClickINC splits it across heterogeneous
// devices — sparse-block elimination near the workers, the stateful
// aggregator on a shared switch — and the run shows both the traffic
// reduction and in-network aggregation.
//
//   $ ./sparse_mlagg
#include <cstdio>

#include "apps/workloads.h"
#include "core/service.h"
#include "modules/templates.h"

int main() {
  using namespace clickinc;
  std::printf("user program (Fig. 7, %d ClickINC lines):\n%s\n",
              lang::countLoc(modules::sparseMlaggSource()),
              modules::sparseMlaggSource().c_str());

  core::ClickIncService svc(topo::Topology::paperEmulation());
  apps::MlaggConfig cfg;
  cfg.worker_hosts = {svc.topology().findNode("pod0a"),
                      svc.topology().findNode("pod0b")};
  cfg.server_host = svc.topology().findNode("pod2b");
  cfg.rounds = 100;
  cfg.dim = 16;
  cfg.block_size = 4;
  cfg.sparsity = 0.6;
  cfg.check_overflow = false;  // workers pre-scale gradients

  const auto r = apps::runMlagg(svc, cfg);
  if (!r.deployed) {
    std::printf("placement failed: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("2 workers x %d rounds, dim=%d, %.0f%% sparse blocks:\n",
              cfg.rounds, cfg.dim, 100 * cfg.sparsity);
  std::printf("  rounds aggregated:        %llu (%llu fully in-network)\n",
              static_cast<unsigned long long>(r.rounds_done),
              static_cast<unsigned long long>(r.inc_aggregated));
  std::printf("  goodput:                  %.2f Gbps\n", r.goodput_gbps);
  std::printf("  avg INC latency:          %.0f ns\n", r.avg_inc_latency_ns);
  std::printf("  bytes surviving to server: %.0f (aggregation + sparsity "
              "drop the rest in-network)\n",
              r.server_link_bytes);
  return 0;
}
