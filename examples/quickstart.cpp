// Quickstart: the paper's Fig. 1 count-min sketch, written in the ClickINC
// language, compiled to IR, executed on the interpreter, and emitted as
// P4-16 — the whole developer-facing surface in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "backend/codegen.h"
#include "ir/interp.h"
#include "lang/lower.h"

int main() {
  using namespace clickinc;

  // The Fig. 1 ClickINC program: 3-row count-min sketch over hdr.key.
  const std::string source = R"(mem = Array(row=3, size=65536, w=32)
vals = list()
for i in range(3):
    f = Hash(type="crc_16", key=hdr.key, ceil=65536)
    idx = get(f, hdr.key)
    vals.append(count(mem[i], idx, 1))
relt = min(vals)
hdr.count = relt
)";

  lang::HeaderSpec hdr;
  hdr.add("key", 32);
  hdr.add("count", 32);
  lang::CompileOptions opts;
  opts.program_name = "cms_quickstart";

  const ir::IrProgram prog = lang::compileSource(source, hdr, opts);
  std::printf("compiled %zu ClickINC lines into %zu IR instructions, "
              "%zu state objects\n\n",
              static_cast<std::size_t>(lang::countLoc(source)),
              prog.instrs.size(), prog.states.size());
  std::printf("%s\n", prog.toString().c_str());

  // Run some packets through the single-device reference interpreter.
  ir::StateStore store;
  Rng rng(7);
  ir::Interpreter interp(&store, &rng);
  const std::uint64_t keys[] = {42, 42, 42, 7, 42};
  for (std::uint64_t key : keys) {
    ir::PacketView pkt;
    pkt.setField("hdr.key", key);
    interp.runAll(prog, pkt);
    std::printf("packet key=%llu -> count estimate %llu\n",
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(pkt.field("hdr.count")));
  }

  // And what the backend would hand to the Tofino toolchain.
  std::printf("\n--- generated P4-16 (%d LoC) ---\n%s",
              backend::generatedLoc(backend::Target::kP4_16, prog),
              backend::generate(backend::Target::kP4_16, prog).c_str());
  return 0;
}
